//! Code generation from the IR to the modelled x86-64 subset, at three
//! optimization levels standing in for the paper's compiler baselines.

use crate::ir::{Function, Op, ValueId, Width};
use std::collections::HashSet;
use std::fmt::Write as _;
use stoke_x86::{Gpr, Program};

/// The three baseline code generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// `llvm -O0` stand-in: every value round-trips through a stack slot.
    O0,
    /// `icc -O3` stand-in: register allocation, naive instruction selection.
    O2,
    /// `gcc -O3` stand-in: register allocation plus immediate folding and
    /// simple strength reduction.
    O3,
}

/// System V argument registers, in order.
pub const PARAM_REGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

/// Compile an IR function to assembly at the given optimization level.
///
/// # Panics
/// Panics if the function uses more than six parameters or needs more
/// temporary registers than the allocator's pool provides (no kernel in
/// `stoke-workloads` does).
pub fn compile(f: &Function, level: OptLevel) -> Program {
    let text = match level {
        OptLevel::O0 => lower_o0(f),
        OptLevel::O2 => lower_regalloc(f, false),
        OptLevel::O3 => lower_regalloc(f, true),
    };
    text.parse()
        .unwrap_or_else(|e| panic!("generated invalid assembly for {}: {}\n{}", f.name, e, text))
}

fn reg32(g: Gpr) -> String {
    g.view(stoke_x86::Width::L).name().to_string()
}

fn reg_name(g: Gpr, w: Width) -> String {
    match w {
        Width::W32 => reg32(g),
        Width::W64 => g.name64().to_string(),
    }
}

fn suffix(w: Width) -> char {
    match w {
        Width::W32 => 'l',
        Width::W64 => 'q',
    }
}

// ---------------------------------------------------------------------
// O0: every value lives in a stack slot.
// ---------------------------------------------------------------------

fn lower_o0(f: &Function) -> String {
    assert!(f.num_params <= PARAM_REGS.len(), "too many parameters");
    let mut out = String::new();
    let param_slot = |i: usize| -> i32 { -8 * (i as i32 + 1) };
    let value_slot = |v: ValueId| -> i32 { -8 * (f.num_params as i32 + v.0 as i32 + 1) };

    // Spill every parameter, llvm -O0 style.
    for (i, reg) in PARAM_REGS.iter().enumerate().take(f.num_params) {
        let _ = writeln!(out, "movq {}, {}(rsp)", reg.name64(), param_slot(i));
    }

    for (idx, inst) in f.insts.iter().enumerate() {
        let v = ValueId(idx as u32);
        let w = inst.width;
        let s = suffix(w);
        let rax = reg_name(Gpr::Rax, w);
        let rcx = reg_name(Gpr::Rcx, w);
        // Load a value operand into a scratch register at the instruction width.
        let load = |out: &mut String, val: ValueId, scratch: Gpr| {
            let _ = writeln!(
                out,
                "mov{} {}(rsp), {}",
                s,
                value_slot(val),
                reg_name(scratch, w)
            );
        };
        let mut store_result = true;
        match &inst.op {
            Op::Param(i) => {
                let _ = writeln!(out, "mov{} {}(rsp), {}", s, param_slot(*i), rax);
            }
            Op::Const(c) => match w {
                Width::W64 => {
                    let _ = writeln!(out, "movabsq {}, rax", c);
                }
                Width::W32 => {
                    let _ = writeln!(out, "movl {}, eax", (*c as u32) as i64);
                }
            },
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::And(a, b)
            | Op::Or(a, b)
            | Op::Xor(a, b)
            | Op::Mul(a, b) => {
                load(&mut out, *a, Gpr::Rax);
                load(&mut out, *b, Gpr::Rcx);
                let mnemonic = match &inst.op {
                    Op::Add(..) => "add",
                    Op::Sub(..) => "sub",
                    Op::And(..) => "and",
                    Op::Or(..) => "or",
                    Op::Xor(..) => "xor",
                    _ => "imul",
                };
                let _ = writeln!(out, "{}{} {}, {}", mnemonic, s, rcx, rax);
            }
            Op::UMulHi(a, b) => {
                load(&mut out, *a, Gpr::Rax);
                load(&mut out, *b, Gpr::Rcx);
                let _ = writeln!(out, "mul{} {}", s, rcx);
                let _ = writeln!(out, "mov{} {}, {}", s, reg_name(Gpr::Rdx, w), rax);
            }
            Op::Shl(a, b) | Op::Shr(a, b) | Op::Sar(a, b) => {
                load(&mut out, *a, Gpr::Rax);
                load(&mut out, *b, Gpr::Rcx);
                let mnemonic = match &inst.op {
                    Op::Shl(..) => "shl",
                    Op::Shr(..) => "shr",
                    _ => "sar",
                };
                let _ = writeln!(out, "{}{} cl, {}", mnemonic, s, rax);
            }
            Op::Neg(a) | Op::Not(a) => {
                load(&mut out, *a, Gpr::Rax);
                let mnemonic = if matches!(inst.op, Op::Neg(_)) {
                    "neg"
                } else {
                    "not"
                };
                let _ = writeln!(out, "{}{} {}", mnemonic, s, rax);
            }
            Op::Eq(a, b) | Op::Ne(a, b) | Op::Ult(a, b) | Op::Slt(a, b) => {
                load(&mut out, *a, Gpr::Rax);
                load(&mut out, *b, Gpr::Rcx);
                let _ = writeln!(out, "cmp{} {}, {}", s, rcx, rax);
                let cc = match &inst.op {
                    Op::Eq(..) => "e",
                    Op::Ne(..) => "ne",
                    Op::Ult(..) => "b",
                    _ => "l",
                };
                let _ = writeln!(out, "set{} al", cc);
                let _ = writeln!(out, "movzbq al, rax");
            }
            Op::Ite(c, t, e) => {
                load(&mut out, *e, Gpr::Rax);
                load(&mut out, *t, Gpr::Rcx);
                let _ = writeln!(out, "movq {}(rsp), rdx", value_slot(*c));
                let _ = writeln!(out, "testq rdx, rdx");
                let _ = writeln!(out, "cmovneq rcx, rax");
            }
            Op::Load { base, offset } => {
                let _ = writeln!(out, "movq {}(rsp), rcx", value_slot(*base));
                let _ = writeln!(out, "mov{} {}(rcx), {}", s, offset, rax);
            }
            Op::Store {
                base,
                offset,
                value,
            } => {
                let _ = writeln!(out, "movq {}(rsp), rcx", value_slot(*base));
                load(&mut out, *value, Gpr::Rax);
                let _ = writeln!(out, "mov{} {}, {}(rcx)", s, rax, offset);
                store_result = false;
            }
        }
        if store_result {
            // Results of 32-bit operations are zero-extended in rax, so a
            // full-width spill keeps the slot canonical.
            let _ = writeln!(out, "movq rax, {}(rsp)", value_slot(v));
        }
    }
    if let Some(r) = f.ret {
        let _ = writeln!(out, "movq {}(rsp), rax", value_slot(r));
    }
    out
}

// ---------------------------------------------------------------------
// O2 / O3: linear register allocation with rax/rcx/rdx as scratch.
// ---------------------------------------------------------------------

/// Temporary register pool. The scratch registers rax/rcx/rdx are never
/// allocated; parameter registers appear last so that entry moves cannot
/// clobber still-unread parameters.
const POOL: [Gpr; 11] = [
    Gpr::Rbx,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
    Gpr::R14,
    Gpr::R15,
    Gpr::R9,
    Gpr::R8,
    Gpr::Rsi,
    Gpr::Rdi,
];

struct Allocator {
    free: Vec<Gpr>,
    assigned: Vec<Option<Gpr>>,
}

impl Allocator {
    fn new(num_values: usize) -> Allocator {
        Allocator {
            free: POOL.iter().rev().copied().collect(),
            assigned: vec![None; num_values],
        }
    }

    fn alloc(&mut self, v: ValueId) -> Gpr {
        let g = self.free.pop().expect("register allocator pool exhausted");
        self.assigned[v.0 as usize] = Some(g);
        g
    }

    fn reg(&self, v: ValueId) -> Gpr {
        self.assigned[v.0 as usize].expect("value has no register (folded constant?)")
    }

    fn release(&mut self, v: ValueId) {
        if let Some(g) = self.assigned[v.0 as usize].take() {
            self.free.push(g);
        }
    }
}

fn lower_regalloc(f: &Function, fold_constants: bool) -> String {
    assert!(f.num_params <= PARAM_REGS.len(), "too many parameters");
    let mut out = String::new();
    let last_uses = f.last_uses();
    let mut alloc = Allocator::new(f.insts.len());

    // Which constants can stay immediates at O3 (never needed in a register).
    let mut needs_reg: HashSet<ValueId> = HashSet::new();
    for inst in &f.insts {
        match &inst.op {
            Op::Ite(c, t, e) => {
                needs_reg.extend([*c, *t, *e]);
            }
            Op::UMulHi(a, b) => {
                needs_reg.extend([*a, *b]);
            }
            Op::Load { base, .. } => {
                needs_reg.insert(*base);
            }
            Op::Store { base, .. } => {
                needs_reg.insert(*base);
            }
            Op::Neg(a) | Op::Not(a) => {
                needs_reg.insert(*a);
            }
            // The first operand of a binary op is loaded into scratch, which
            // also works for an immediate, so only Ite/address/unary uses
            // force materialization.
            _ => {}
        }
    }
    if let Some(r) = f.ret {
        needs_reg.insert(r);
    }

    // A constant value is folded (kept as an immediate) when constant
    // folding is enabled and no use requires a register.
    let folded = |v: ValueId| -> Option<i64> {
        if !fold_constants || needs_reg.contains(&v) {
            return None;
        }
        match f.insts[v.0 as usize].op {
            Op::Const(c) => Some(c),
            _ => None,
        }
    };

    for (idx, inst) in f.insts.iter().enumerate() {
        let v = ValueId(idx as u32);
        let w = inst.width;
        let s = suffix(w);
        let rax = reg_name(Gpr::Rax, w);
        // Textual source operand: an immediate (folded constant) or a
        // register at the instruction width.
        let src = |val: ValueId| -> String {
            match folded(val) {
                Some(c) => format!(
                    "{}",
                    if w == Width::W32 {
                        (c as u32) as i64
                    } else {
                        c
                    }
                ),
                None => reg_name(alloc.reg(val), w),
            }
        };
        let produces_value = !matches!(inst.op, Op::Store { .. });
        match &inst.op {
            Op::Param(i) => {
                let dst = alloc.alloc(v);
                let _ = writeln!(out, "movq {}, {}", PARAM_REGS[*i].name64(), dst.name64());
            }
            Op::Const(c) => {
                if folded(v).is_none() {
                    let dst = alloc.alloc(v);
                    match w {
                        Width::W64 => {
                            let _ = writeln!(out, "movabsq {}, {}", c, dst.name64());
                        }
                        Width::W32 => {
                            let _ = writeln!(out, "movl {}, {}", (*c as u32) as i64, reg32(dst));
                        }
                    }
                }
            }
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::And(a, b)
            | Op::Or(a, b)
            | Op::Xor(a, b)
            | Op::Mul(a, b) => {
                let mnemonic = match &inst.op {
                    Op::Add(..) => "add",
                    Op::Sub(..) => "sub",
                    Op::And(..) => "and",
                    Op::Or(..) => "or",
                    Op::Xor(..) => "xor",
                    _ => "imul",
                };
                let a_src = src(*a);
                let b_src = src(*b);
                let _ = writeln!(out, "mov{} {}, {}", s, a_src, rax);
                // Strength-reduce multiplications by powers of two at O3.
                if fold_constants && mnemonic == "imul" {
                    if let Some(c) = folded(*b) {
                        if c > 0 && (c as u64).is_power_of_two() {
                            let _ =
                                writeln!(out, "shl{} {}, {}", s, (c as u64).trailing_zeros(), rax);
                            let dst = finish(&mut out, &mut alloc, v, w);
                            release_dead(&mut alloc, inst, idx, &last_uses, &folded);
                            let _ = dst;
                            continue;
                        }
                    }
                }
                let _ = writeln!(out, "{}{} {}, {}", mnemonic, s, b_src, rax);
                release_dead(&mut alloc, inst, idx, &last_uses, &folded);
                finish(&mut out, &mut alloc, v, w);
                continue;
            }
            Op::UMulHi(a, b) => {
                let _ = writeln!(out, "mov{} {}, {}", s, src(*a), rax);
                let _ = writeln!(out, "mul{} {}", s, src(*b));
                let _ = writeln!(out, "mov{} {}, {}", s, reg_name(Gpr::Rdx, w), rax);
            }
            Op::Shl(a, b) | Op::Shr(a, b) | Op::Sar(a, b) => {
                let mnemonic = match &inst.op {
                    Op::Shl(..) => "shl",
                    Op::Shr(..) => "shr",
                    _ => "sar",
                };
                let _ = writeln!(out, "mov{} {}, {}", s, src(*a), rax);
                if let Some(c) = folded(*b) {
                    let _ = writeln!(out, "{}{} {}, {}", mnemonic, s, c, rax);
                } else {
                    let _ = writeln!(out, "movq {}, rcx", alloc.reg(*b).name64());
                    let _ = writeln!(out, "{}{} cl, {}", mnemonic, s, rax);
                }
            }
            Op::Neg(a) | Op::Not(a) => {
                let mnemonic = if matches!(inst.op, Op::Neg(_)) {
                    "neg"
                } else {
                    "not"
                };
                let _ = writeln!(out, "mov{} {}, {}", s, src(*a), rax);
                let _ = writeln!(out, "{}{} {}", mnemonic, s, rax);
            }
            Op::Eq(a, b) | Op::Ne(a, b) | Op::Ult(a, b) | Op::Slt(a, b) => {
                let cc = match &inst.op {
                    Op::Eq(..) => "e",
                    Op::Ne(..) => "ne",
                    Op::Ult(..) => "b",
                    _ => "l",
                };
                let _ = writeln!(out, "mov{} {}, {}", s, src(*a), rax);
                let _ = writeln!(out, "cmp{} {}, {}", s, src(*b), rax);
                let _ = writeln!(out, "set{} al", cc);
                let _ = writeln!(out, "movzbq al, rax");
            }
            Op::Ite(c, t, e) => {
                let _ = writeln!(out, "mov{} {}, {}", s, src(*e), rax);
                let creg = alloc.reg(*c);
                let _ = writeln!(out, "testq {}, {}", creg.name64(), creg.name64());
                let _ = writeln!(out, "cmovneq {}, rax", alloc.reg(*t).name64());
            }
            Op::Load { base, offset } => {
                let _ = writeln!(
                    out,
                    "mov{} {}({}), {}",
                    s,
                    offset,
                    alloc.reg(*base).name64(),
                    rax
                );
            }
            Op::Store {
                base,
                offset,
                value,
            } => {
                let _ = writeln!(out, "mov{} {}, {}", s, src(*value), rax);
                let _ = writeln!(
                    out,
                    "mov{} {}, {}({})",
                    s,
                    rax,
                    offset,
                    alloc.reg(*base).name64()
                );
            }
        }
        release_dead(&mut alloc, inst, idx, &last_uses, &folded);
        if produces_value
            && !matches!(inst.op, Op::Param(_))
            && folded(v).is_none()
            && !matches!(inst.op, Op::Const(_))
        {
            finish(&mut out, &mut alloc, v, w);
        }
    }
    if let Some(r) = f.ret {
        let _ = writeln!(out, "movq {}, rax", alloc.reg(r).name64());
    }
    out
}

/// Release the registers of operands that die at this instruction.
fn release_dead(
    alloc: &mut Allocator,
    inst: &crate::ir::Inst,
    idx: usize,
    last_uses: &[usize],
    folded: &dyn Fn(ValueId) -> Option<i64>,
) {
    for operand in inst.op.operands() {
        if folded(operand).is_none() && last_uses[operand.0 as usize] <= idx {
            alloc.release(operand);
        }
    }
}

/// Move the scratch result into a freshly allocated register.
fn finish(out: &mut String, alloc: &mut Allocator, v: ValueId, _w: Width) -> Gpr {
    let dst = alloc.alloc(v);
    let _ = writeln!(out, "movq rax, {}", dst.name64());
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::evaluate;
    use crate::ir::Op;
    use std::collections::BTreeMap;

    /// p14 from Hacker's Delight: floor of the average of two integers,
    /// (x & y) + ((x ^ y) >> 1).
    fn average() -> Function {
        let mut f = Function::new("p14", 2);
        let x = f.push32(Op::Param(0));
        let y = f.push32(Op::Param(1));
        let a = f.push32(Op::And(x, y));
        let b = f.push32(Op::Xor(x, y));
        let one = f.push32(Op::Const(1));
        let half = f.push32(Op::Shr(b, one));
        let r = f.push32(Op::Add(a, half));
        f.ret(r);
        f
    }

    #[test]
    fn o0_is_much_longer_than_o3() {
        let f = average();
        let o0 = compile(&f, OptLevel::O0);
        let o2 = compile(&f, OptLevel::O2);
        let o3 = compile(&f, OptLevel::O3);
        assert!(
            o0.len() > o3.len() + 5,
            "O0 ({}) vs O3 ({})",
            o0.len(),
            o3.len()
        );
        assert!(o3.len() <= o2.len());
        assert!(o0.static_latency() > o3.static_latency());
    }

    #[test]
    fn all_levels_agree_with_the_interpreter() {
        let f = average();
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let program = compile(&f, level);
            for (x, y) in [
                (0u64, 0u64),
                (1, 3),
                (0xffff_ffff, 1),
                (123456, 654321),
                (7, 8),
            ] {
                let mut mem = BTreeMap::new();
                let expected = evaluate(&f, &[x, y], &mut mem);
                let mut state = stoke_emu::MachineState::new();
                state.set_gpr64(Gpr::Rdi, x);
                state.set_gpr64(Gpr::Rsi, y);
                state.set_gpr64(Gpr::Rsp, 0x8000);
                state.memory.mark_valid(0x7000, 0x1000);
                let out = stoke_emu::run(&program, &state);
                assert!(
                    out.faults.is_clean(),
                    "{:?} faulted: {:?}",
                    level,
                    out.faults
                );
                assert_eq!(
                    out.state.read_gpr64(Gpr::Rax) & 0xffff_ffff,
                    expected,
                    "{:?} disagrees with the interpreter on ({}, {})",
                    level,
                    x,
                    y
                );
            }
        }
    }

    #[test]
    fn memory_kernels_compile_and_agree() {
        // x[0] = 3 * x[0] + y[0] (one lane of SAXPY).
        let mut f = Function::new("axpy1", 2);
        let xp = f.push64(Op::Param(0));
        let yp = f.push64(Op::Param(1));
        let x0 = f.push32(Op::Load {
            base: xp,
            offset: 0,
        });
        let y0 = f.push32(Op::Load {
            base: yp,
            offset: 0,
        });
        let a = f.push32(Op::Const(3));
        let ax = f.push32(Op::Mul(a, x0));
        let r = f.push32(Op::Add(ax, y0));
        f.push32(Op::Store {
            base: xp,
            offset: 0,
            value: r,
        });
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let program = compile(&f, level);
            let mut state = stoke_emu::MachineState::new();
            state.set_gpr64(Gpr::Rdi, 0x1000);
            state.set_gpr64(Gpr::Rsi, 0x2000);
            state.set_gpr64(Gpr::Rsp, 0x8000);
            state.memory.mark_valid(0x7000, 0x1000);
            state.memory.poke_wide(0x1000, 10, 4);
            state.memory.poke_wide(0x2000, 5, 4);
            let out = stoke_emu::run(&program, &state);
            assert!(
                out.faults.is_clean(),
                "{:?} faulted: {:?}",
                level,
                out.faults
            );
            assert_eq!(out.state.memory.peek_wide(0x1000, 4), 35, "{:?}", level);
        }
    }

    #[test]
    fn o3_folds_constants_and_strength_reduces() {
        // x * 8 should become a shift at O3 but stay a multiply at O2.
        let mut f = Function::new("mul8", 1);
        let x = f.push32(Op::Param(0));
        let eight = f.push32(Op::Const(8));
        let r = f.push32(Op::Mul(x, eight));
        f.ret(r);
        let o2 = compile(&f, OptLevel::O2).to_string();
        let o3 = compile(&f, OptLevel::O3).to_string();
        assert!(o2.contains("imull"), "O2 should multiply:\n{}", o2);
        assert!(o3.contains("shll"), "O3 should shift:\n{}", o3);
        assert!(!o3.contains("imull"));
    }

    #[test]
    fn sixty_four_bit_widening_multiply() {
        let mut f = Function::new("hi", 2);
        let a = f.push64(Op::Param(0));
        let b = f.push64(Op::Param(1));
        let hi = f.push64(Op::UMulHi(a, b));
        f.ret(hi);
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let program = compile(&f, level);
            let mut state = stoke_emu::MachineState::new();
            state.set_gpr64(Gpr::Rdi, u64::MAX);
            state.set_gpr64(Gpr::Rsi, u64::MAX);
            state.set_gpr64(Gpr::Rsp, 0x8000);
            state.memory.mark_valid(0x7000, 0x1000);
            let out = stoke_emu::run(&program, &state);
            assert_eq!(out.state.read_gpr64(Gpr::Rax), u64::MAX - 1, "{:?}", level);
        }
    }
}
