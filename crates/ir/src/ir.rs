//! The straight-line expression IR in which every benchmark kernel is
//! written once.

/// Handle to a value computed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Operation width: the Hacker's Delight kernels are 32-bit, the
/// Montgomery multiplication and pointer arithmetic are 64-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32-bit operation.
    W32,
    /// 64-bit operation.
    W64,
}

impl Width {
    /// Number of bytes moved by loads/stores of this width.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Value mask.
    pub fn mask(self) -> u64 {
        match self {
            Width::W32 => 0xffff_ffff,
            Width::W64 => u64::MAX,
        }
    }
}

/// An IR operation. Value operands refer to earlier instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// The i-th function parameter (System V order: rdi, rsi, rdx, rcx, r8, r9).
    Param(usize),
    /// A constant.
    Const(i64),
    /// Addition.
    Add(ValueId, ValueId),
    /// Subtraction.
    Sub(ValueId, ValueId),
    /// Low half of the product.
    Mul(ValueId, ValueId),
    /// High half of the unsigned full product (e.g. the upper 64 bits of a
    /// 64×64 multiplication).
    UMulHi(ValueId, ValueId),
    /// Bitwise and.
    And(ValueId, ValueId),
    /// Bitwise or.
    Or(ValueId, ValueId),
    /// Bitwise exclusive or.
    Xor(ValueId, ValueId),
    /// Logical shift left (count taken modulo the width).
    Shl(ValueId, ValueId),
    /// Logical shift right.
    Shr(ValueId, ValueId),
    /// Arithmetic shift right.
    Sar(ValueId, ValueId),
    /// Two's complement negation.
    Neg(ValueId),
    /// Bitwise complement.
    Not(ValueId),
    /// Equality (1 or 0).
    Eq(ValueId, ValueId),
    /// Disequality (1 or 0).
    Ne(ValueId, ValueId),
    /// Unsigned less-than (1 or 0).
    Ult(ValueId, ValueId),
    /// Signed less-than (1 or 0).
    Slt(ValueId, ValueId),
    /// Select: `cond != 0 ? a : b`.
    Ite(ValueId, ValueId, ValueId),
    /// Load from `base + offset`.
    Load {
        /// Base address value.
        base: ValueId,
        /// Constant byte offset.
        offset: i32,
    },
    /// Store `value` to `base + offset`. Produces no usable result.
    Store {
        /// Base address value.
        base: ValueId,
        /// Constant byte offset.
        offset: i32,
        /// The value stored.
        value: ValueId,
    },
}

impl Op {
    /// The value operands of this operation.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Op::Param(_) | Op::Const(_) => vec![],
            Op::Neg(a) | Op::Not(a) => vec![*a],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::UMulHi(a, b)
            | Op::And(a, b)
            | Op::Or(a, b)
            | Op::Xor(a, b)
            | Op::Shl(a, b)
            | Op::Shr(a, b)
            | Op::Sar(a, b)
            | Op::Eq(a, b)
            | Op::Ne(a, b)
            | Op::Ult(a, b)
            | Op::Slt(a, b) => vec![*a, *b],
            Op::Ite(c, a, b) => vec![*c, *a, *b],
            Op::Load { base, .. } => vec![*base],
            Op::Store { base, value, .. } => vec![*base, *value],
        }
    }
}

/// One IR instruction: an operation at a width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// The operation width.
    pub width: Width,
}

/// A straight-line IR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (e.g. `p01`).
    pub name: String,
    /// Number of parameters.
    pub num_params: usize,
    /// The instructions, in execution order (SSA-like: each defines one value).
    pub insts: Vec<Inst>,
    /// The returned value, if any (placed in rax/eax).
    pub ret: Option<ValueId>,
}

impl Function {
    /// Create an empty function.
    pub fn new(name: impl Into<String>, num_params: usize) -> Function {
        Function {
            name: name.into(),
            num_params,
            insts: Vec::new(),
            ret: None,
        }
    }

    /// Append an instruction and return its value handle.
    pub fn push(&mut self, op: Op, width: Width) -> ValueId {
        let id = ValueId(self.insts.len() as u32);
        self.insts.push(Inst { op, width });
        id
    }

    /// Append a 32-bit instruction.
    pub fn push32(&mut self, op: Op) -> ValueId {
        self.push(op, Width::W32)
    }

    /// Append a 64-bit instruction.
    pub fn push64(&mut self, op: Op) -> ValueId {
        self.push(op, Width::W64)
    }

    /// Mark the returned value.
    pub fn ret(&mut self, v: ValueId) {
        self.ret = Some(v);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the function body is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The last instruction index at which each value is used (used by the
    /// register allocators).
    pub fn last_uses(&self) -> Vec<usize> {
        let mut last = vec![0usize; self.insts.len()];
        for (i, inst) in self.insts.iter().enumerate() {
            for v in inst.op.operands() {
                last[v.0 as usize] = i;
            }
        }
        if let Some(r) = self.ret {
            last[r.0 as usize] = self.insts.len();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_sequential_ids() {
        let mut f = Function::new("t", 2);
        let a = f.push32(Op::Param(0));
        let b = f.push32(Op::Param(1));
        let s = f.push32(Op::Add(a, b));
        f.ret(s);
        assert_eq!((a, b, s), (ValueId(0), ValueId(1), ValueId(2)));
        assert_eq!(f.len(), 3);
        assert_eq!(f.ret, Some(ValueId(2)));
    }

    #[test]
    fn last_uses_cover_return() {
        let mut f = Function::new("t", 1);
        let a = f.push32(Op::Param(0));
        let one = f.push32(Op::Const(1));
        let s = f.push32(Op::Add(a, one));
        f.ret(s);
        let last = f.last_uses();
        assert_eq!(last[a.0 as usize], 2);
        assert_eq!(
            last[s.0 as usize], 3,
            "return keeps the value live past the body"
        );
    }

    #[test]
    fn operands_enumeration() {
        let op = Op::Ite(ValueId(0), ValueId(1), ValueId(2));
        assert_eq!(op.operands(), vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert!(Op::Const(3).operands().is_empty());
    }
}
