//! The batched lockstep execution backend: all test cases at once.
//!
//! The MCMC inner loop evaluates one candidate rewrite on *every* test
//! case of a suite. The prepared backend
//! ([`PreparedProgram::run_prepared`]) hoists decode out of that loop but
//! still walks the program once per case — the instruction dispatch, the
//! operand decoding and the machine-state clone are all repeated N times.
//! This module inverts the loops: a [`BatchState`] stores the CPU state of
//! all N cases as a structure of arrays (one *column* per test case —
//! per-register vectors of width N), and a [`BatchedProgram`] applies each
//! instruction's semantics across all live columns in one pass before
//! moving to the next instruction.
//!
//! Why this is faster than N sequential runs of the same semantics:
//!
//! - **Dispatch amortization.** Each instruction is dispatched through a
//!   fn-pointer handler table built at prepare time (threaded-code style),
//!   once per instruction *step* instead of once per instruction *per
//!   case*; inside a handler the opcode/operand branches are perfectly
//!   predicted because every column executes the same instruction.
//! - **No per-case clone.** The prepared backend clones a full
//!   [`MachineState`] (two heap allocations) per case; a reusable
//!   `BatchState` is reloaded in place, so the steady state of the search
//!   loop performs no allocation at all.
//! - **Early-exit granularity.** A per-column fault/liveness mask lets the
//!   §4.5 early-termination bound kill columns *during* execution (see
//!   [`BatchedProgram::run_lockstep_with`]): once the cost bound provably
//!   trips, dead columns stop costing work per instruction step instead of
//!   per test case.
//!
//! Execution semantics are shared with the interpreter through the
//! crate-internal `Cpu` trait: the column view implements the same
//! primitive accesses and runs the identical provided `execute` body, so
//! the batched backend is bit-identical to
//! [`run_prepared`](PreparedProgram::run_prepared) by construction (and by
//! the randomized property suite `prop_batched` at the workspace root).

use crate::exec::{Cpu, Faults, Outcome};
use crate::prepare::PreparedProgram;
use crate::state::{merge_reg_write, MachineState, Memory, XmmValue};
use stoke_x86::{
    AluOp, Cond, Flag, Gpr, Instruction, Mem, Opcode, Operand, Reg, ShiftOp, Width, Xmm,
};

/// The machine states of N test cases in structure-of-arrays layout: one
/// column per test case.
///
/// Register `r`'s values across the batch live at
/// `gprs[r.index() * N + column]` — a contiguous vector of width N per
/// register, mirrored for SSE registers, flags and the three defined-ness
/// masks. Memory images stay per-column ([`Memory`] is a sparse map, which
/// has no useful columnar form). Each column also carries its own
/// [`Faults`] counters and a liveness bit used by the §4.5 early exit.
///
/// A `BatchState` is a reusable scratch buffer: [`load`](BatchState::load)
/// re-fills it in place, reusing every allocation, which is what makes the
/// batched backend allocation-free in the search's steady state.
#[derive(Debug, Clone, Default)]
pub struct BatchState {
    /// Number of columns (test cases).
    n: usize,
    /// Number of columns still live (not killed by the early exit).
    live_cols: usize,
    gprs: Vec<u64>,
    xmms: Vec<XmmValue>,
    flags: Vec<bool>,
    gpr_defined: Vec<bool>,
    xmm_defined: Vec<bool>,
    flag_defined: Vec<bool>,
    memories: Vec<Memory>,
    faults: Vec<Faults>,
    live: Vec<bool>,
    /// Per-column dirty address range `[lo, hi)` covering every successful
    /// store since the last (re)load — `(u64::MAX, 0)` when clean — so
    /// [`reload`](BatchState::reload) re-copies only the bytes a run could
    /// have changed instead of whole memory images.
    dirty: Vec<(u64, u64)>,
    /// Whether every column's memory image has the identical segment
    /// layout (established at load time; execution never changes layouts).
    /// When set, an address resolved against one column's image is valid
    /// for all of them, so the memory handlers resolve each distinct
    /// address once per instruction step instead of once per column.
    uniform_layout: bool,
    /// Width-`n` scratch row used by the all-live row-pass handlers.
    tmp: Vec<u64>,
}

impl BatchState {
    /// An empty batch (zero columns). Load inputs with
    /// [`load`](BatchState::load).
    pub fn new() -> BatchState {
        BatchState::default()
    }

    /// Re-fill the batch from the given input states, one column each, in
    /// place: every column starts live with clean fault counters. Existing
    /// allocations (including the per-column memory images) are reused.
    pub fn load<'s, I>(&mut self, inputs: I)
    where
        I: IntoIterator<Item = &'s MachineState>,
        I::IntoIter: ExactSizeIterator,
    {
        let inputs = inputs.into_iter();
        let n = inputs.len();
        self.n = n;
        self.live_cols = n;
        self.dirty.clear();
        self.dirty.resize(n, (u64::MAX, 0));
        self.tmp.clear();
        self.tmp.resize(n, 0);
        self.gprs.clear();
        self.gprs.resize(16 * n, 0);
        self.xmms.clear();
        self.xmms.resize(16 * n, [0, 0]);
        self.flags.clear();
        self.flags.resize(5 * n, false);
        self.gpr_defined.clear();
        self.gpr_defined.resize(16 * n, false);
        self.xmm_defined.clear();
        self.xmm_defined.resize(16 * n, false);
        self.flag_defined.clear();
        self.flag_defined.resize(5 * n, false);
        self.faults.clear();
        self.faults.resize(n, Faults::default());
        self.live.clear();
        self.live.resize(n, true);
        self.memories.truncate(n);
        while self.memories.len() < n {
            self.memories.push(Memory::new());
        }
        for (col, input) in inputs.enumerate() {
            for i in 0..16 {
                self.gprs[i * n + col] = input.gprs[i];
                self.gpr_defined[i * n + col] = input.gpr_defined[i];
                self.xmms[i * n + col] = input.xmms[i];
                self.xmm_defined[i * n + col] = input.xmm_defined[i];
            }
            for i in 0..5 {
                self.flags[i * n + col] = input.flags[i];
                self.flag_defined[i * n + col] = input.flag_defined[i];
            }
            self.memories[col].copy_from(&input.memory);
        }
        self.uniform_layout = self
            .memories
            .split_first()
            .is_none_or(|(first, rest)| rest.iter().all(|m| first.same_layout(m)));
    }

    /// Re-fill the batch from the *same* input states as the previous
    /// [`load`](BatchState::load) (or `reload`), without re-copying the
    /// per-column memory images: only each column's dirty address range —
    /// the span covering every store the intervening run performed — is
    /// copied back from the input, which restores the image bit-for-bit
    /// (verified by a `debug_assert`). Registers, flags, defined-ness,
    /// faults and liveness are refilled as `load` does.
    ///
    /// Falls back to a full [`load`](BatchState::load) if the batch width
    /// changed. Passing states that differ from the previous load's is a
    /// logic error.
    pub fn reload<'s, I>(&mut self, inputs: I)
    where
        I: IntoIterator<Item = &'s MachineState>,
        I::IntoIter: ExactSizeIterator,
    {
        let inputs = inputs.into_iter();
        let n = self.n;
        if inputs.len() != n || self.memories.len() != n {
            self.load(inputs);
            return;
        }
        self.live_cols = n;
        self.faults.fill(Faults::default());
        self.live.fill(true);
        for (col, input) in inputs.enumerate() {
            for i in 0..16 {
                self.gprs[i * n + col] = input.gprs[i];
                self.gpr_defined[i * n + col] = input.gpr_defined[i];
                self.xmms[i * n + col] = input.xmms[i];
                self.xmm_defined[i * n + col] = input.xmm_defined[i];
            }
            for i in 0..5 {
                self.flags[i * n + col] = input.flags[i];
                self.flag_defined[i * n + col] = input.flag_defined[i];
            }
            let (lo, hi) = std::mem::replace(&mut self.dirty[col], (u64::MAX, 0));
            if lo < hi {
                self.memories[col].copy_range_from(&input.memory, lo, hi);
            }
            debug_assert_eq!(
                self.memories[col], input.memory,
                "reload requires the same inputs as the previous load"
            );
        }
    }

    /// Dirty-tracking store: on success, widen the column's dirty range so
    /// [`reload`](BatchState::reload) knows what to restore.
    fn store_dirty(&mut self, col: usize, addr: u64, value: u64, len: u64) -> bool {
        if !self.memories[col].store(addr, value, len) {
            return false;
        }
        if len > 0 {
            let d = &mut self.dirty[col];
            d.0 = d.0.min(addr);
            // No overflow: the store succeeded, so `addr + len` is in a
            // segment.
            d.1 = d.1.max(addr + len);
        }
        true
    }

    /// Number of columns (test cases) in the batch.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of columns still live.
    pub fn live_columns(&self) -> usize {
        self.live_cols
    }

    /// Whether a column is still live (has not been killed).
    pub fn is_live(&self, col: usize) -> bool {
        self.live[col]
    }

    /// Kill a column: it stops executing from the next instruction step
    /// on. Its state is left as of the moment of death (partial — do not
    /// read it as a final state), which is exactly what the §4.5 early
    /// exit wants: columns the cost bound has already ruled out stop
    /// costing work.
    pub fn kill(&mut self, col: usize) {
        if self.live[col] {
            self.live[col] = false;
            self.live_cols -= 1;
        }
    }

    /// The fault counters of a column.
    pub fn faults(&self, col: usize) -> Faults {
        self.faults[col]
    }

    /// A read-only view of one column's machine state, borrowing the
    /// batch (no extraction copy). Only meaningful for columns that were
    /// never killed.
    pub fn column(&self, col: usize) -> ColumnRef<'_> {
        ColumnRef { state: self, col }
    }

    /// Extract one column into an owned [`MachineState`].
    pub fn column_state(&self, col: usize) -> MachineState {
        let n = self.n;
        let mut out = MachineState::new();
        for i in 0..16 {
            out.gprs[i] = self.gprs[i * n + col];
            out.gpr_defined[i] = self.gpr_defined[i * n + col];
            out.xmms[i] = self.xmms[i * n + col];
            out.xmm_defined[i] = self.xmm_defined[i * n + col];
        }
        for i in 0..5 {
            out.flags[i] = self.flags[i * n + col];
            out.flag_defined[i] = self.flag_defined[i * n + col];
        }
        out.memory = self.memories[col].clone();
        out
    }
}

/// A read-only view of one column of a [`BatchState`], exposing the same
/// state reads as [`MachineState`] without copying the column out. Used by
/// the cost function to compare a column's final state against a test
/// case's expected output in place.
#[derive(Clone, Copy)]
pub struct ColumnRef<'a> {
    state: &'a BatchState,
    col: usize,
}

impl ColumnRef<'_> {
    /// Read the full 64-bit value of an architectural register.
    pub fn read_gpr64(&self, g: Gpr) -> u64 {
        self.state.gprs[g.index() * self.state.n + self.col]
    }

    /// Read an SSE register.
    pub fn read_xmm(&self, x: Xmm) -> XmmValue {
        self.state.xmms[x.index() * self.state.n + self.col]
    }

    /// Read a status flag.
    pub fn read_flag(&self, f: Flag) -> bool {
        self.state.flags[f.index() * self.state.n + self.col]
    }

    /// The column's memory image.
    pub fn memory(&self) -> &Memory {
        &self.state.memories[self.col]
    }

    /// The column's fault counters.
    pub fn faults(&self) -> Faults {
        self.state.faults[self.col]
    }
}

/// A mutable view of one column implementing the crate-internal `Cpu`
/// trait, so the shared instruction semantics execute directly against the
/// structure-of-arrays layout.
struct Col<'a> {
    s: &'a mut BatchState,
    col: usize,
}

impl Col<'_> {
    #[inline]
    fn at(&self, lane: usize) -> usize {
        lane * self.s.n + self.col
    }
}

impl Cpu for Col<'_> {
    fn read_reg(&self, r: Reg) -> u64 {
        r.width().truncate(self.s.gprs[self.at(r.parent().index())])
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        let i = self.at(r.parent().index());
        self.s.gprs[i] = merge_reg_write(self.s.gprs[i], r.width(), value);
        self.s.gpr_defined[i] = true;
    }

    fn read_gpr64(&self, g: Gpr) -> u64 {
        self.s.gprs[self.at(g.index())]
    }

    fn set_gpr64(&mut self, g: Gpr, value: u64) {
        let i = self.at(g.index());
        self.s.gprs[i] = value;
        self.s.gpr_defined[i] = true;
    }

    fn read_xmm(&self, x: Xmm) -> XmmValue {
        self.s.xmms[self.at(x.index())]
    }

    fn write_xmm(&mut self, x: Xmm, value: XmmValue) {
        let i = self.at(x.index());
        self.s.xmms[i] = value;
        self.s.xmm_defined[i] = true;
    }

    fn read_flag(&self, f: Flag) -> bool {
        self.s.flags[self.at(f.index())]
    }

    fn write_flag(&mut self, f: Flag, value: bool) {
        let i = self.at(f.index());
        self.s.flags[i] = value;
        self.s.flag_defined[i] = true;
    }

    fn mem_load(&self, addr: u64, len: u64) -> Option<u64> {
        self.s.memories[self.col].load(addr, len)
    }

    fn mem_store(&mut self, addr: u64, value: u64, len: u64) -> bool {
        self.s.store_dirty(self.col, addr, value, len)
    }

    fn mem_load128(&self, addr: u64) -> Option<XmmValue> {
        self.s.memories[self.col].load128(addr)
    }

    fn mem_store128(&mut self, addr: u64, value: XmmValue) -> bool {
        // Same semantics as `Memory::store128` (one 16-byte validity
        // check, two 8-byte stores), with both halves journaled.
        if !self.s.memories[self.col].is_valid(addr, 16) {
            return false;
        }
        self.s.store_dirty(self.col, addr, value[0], 8);
        self.s
            .store_dirty(self.col, addr.wrapping_add(8), value[1], 8);
        true
    }

    fn fault_sigsegv(&mut self) {
        self.s.faults[self.col].sigsegv += 1;
    }

    fn fault_sigfpe(&mut self) {
        self.s.faults[self.col].sigfpe += 1;
    }
}

/// One entry of the precomputed dispatch table: advances every live column
/// of the batch by the instruction at `idx`.
type Handler = for<'p> fn(&BatchedProgram<'p>, usize, &mut BatchState);

/// The registers and flags an instruction's undefined-read scan must
/// check, pre-resolved to architectural indices. Copied verbatim from the
/// prepared use spans at decode time, so a specialized handler counts
/// undefined reads element-for-element like the sequential scan.
#[derive(Debug, Clone, Copy, Default)]
struct Uses {
    gpr: [u8; 2],
    ngpr: u8,
    flag: [u8; 4],
    nflag: u8,
}

impl Uses {
    fn of(gpr_span: &[Reg], flag_span: &[Flag]) -> Option<Uses> {
        if gpr_span.len() > 2 || flag_span.len() > 4 {
            return None;
        }
        let mut uses = Uses {
            ngpr: gpr_span.len() as u8,
            nflag: flag_span.len() as u8,
            ..Uses::default()
        };
        for (i, r) in gpr_span.iter().enumerate() {
            uses.gpr[i] = r.parent().index() as u8;
        }
        for (i, f) in flag_span.iter().enumerate() {
            uses.flag[i] = f.index() as u8;
        }
        Some(uses)
    }
}

/// A pre-decoded scalar source: a 64-bit register row or an immediate
/// already truncated to the operation width.
#[derive(Debug, Clone, Copy)]
enum Src {
    Reg(u8),
    Imm(u64),
}

/// The pre-decoded form of one instruction, built once per proposal by
/// [`BatchedProgram::new`]. The hot shapes of compiled code — 64-bit moves
/// between registers, immediates and `disp(base)` memory, and the flag-
/// writing 64-bit ALU/compare forms — get dedicated handlers whose column
/// loops touch contiguous structure-of-arrays rows with no per-column
/// operand decoding; everything else (`Other`) runs the shared `Cpu`
/// semantics through the generic handler.
#[derive(Debug, Clone, Copy)]
enum Micro {
    /// `movq disp(base), dst`
    LoadQ {
        base: u8,
        disp: u64,
        dst: u8,
        uses: Uses,
    },
    /// `movq src, disp(base)`
    StoreQ {
        src: u8,
        base: u8,
        disp: u64,
        uses: Uses,
    },
    /// `movq src, dst` / `movzbq src, dst` (register forms; the source is
    /// pre-masked by `src_mask`).
    MovRR {
        src: u8,
        src_mask: u64,
        dst: u8,
        uses: Uses,
    },
    /// `movq imm, dst` / `movabsq imm, dst`
    MovIR { imm: u64, dst: u8 },
    /// `op{q} src, dst` for the carry-free ALU ops, and `cmpq src, dst`
    /// (`write_back = false`): full 64-bit compute plus the five status
    /// flags.
    AluQ {
        op: AluOp,
        src: Src,
        dst: u8,
        write_back: bool,
        uses: Uses,
    },
    /// `set{cc} dst` (byte register destination; the only specialized
    /// shape that reads flags).
    SetR { cond: Cond, dst: u8, uses: Uses },
    /// `op{q} imm, dst` shifts and rotates with a nonzero count known at
    /// decode time (a zero count decodes to [`Micro::MovRR`], matching the
    /// interpreter's flags-untouched early return).
    ShiftQ {
        op: ShiftOp,
        count: u32,
        dst: u8,
        uses: Uses,
    },
    /// `mulq src` — widening unsigned multiply into `rdx:rax`.
    Mul1Q { src: u8, uses: Uses },
    /// `imulq src, dst` — two-operand signed multiply.
    Imul2Q { src: Src, dst: u8, uses: Uses },
    /// No specialization — run the shared `Cpu::execute` per column.
    Other,
}

/// Decode one instruction into its [`Micro`] form, verifying against the
/// prepared use spans: a shape is only specialized when its undefined-read
/// scan fits the pre-resolved [`Uses`] rows the dedicated handlers walk
/// (no SSE uses; flag uses only for `set{cc}` — which keeps `adc`/`sbb`
/// and `cmov` on the generic path).
fn decode(instr: &Instruction, p: &PreparedProgram<'_>, idx: usize) -> Micro {
    let spans = &p.spans[idx];
    if spans.xmm.0 != spans.xmm.1 {
        return Micro::Other;
    }
    let Some(uses) = Uses::of(
        &p.gpr_uses[spans.gpr.0 as usize..spans.gpr.1 as usize],
        &p.flag_uses[spans.flag.0 as usize..spans.flag.1 as usize],
    ) else {
        return Micro::Other;
    };
    if uses.nflag != 0 && !matches!(instr.opcode(), Opcode::Set(_)) {
        return Micro::Other;
    }
    let gpr = |r: &Reg| r.parent().index() as u8;
    let base_disp = |m: &Mem| match (m.base, m.index) {
        (Some(b), None) => Some((b.index() as u8, m.disp as i64 as u64)),
        _ => None,
    };
    let ops = instr.operands();
    match instr.opcode() {
        Opcode::Mov(Width::Q) => match (&ops[0], &ops[1]) {
            (Operand::Mem(m), Operand::Reg(d)) => match base_disp(m) {
                Some((base, disp)) => Micro::LoadQ {
                    base,
                    disp,
                    dst: gpr(d),
                    uses,
                },
                None => Micro::Other,
            },
            (Operand::Reg(s), Operand::Mem(m)) => match base_disp(m) {
                Some((base, disp)) => Micro::StoreQ {
                    src: gpr(s),
                    base,
                    disp,
                    uses,
                },
                None => Micro::Other,
            },
            (Operand::Reg(s), Operand::Reg(d)) => Micro::MovRR {
                src: gpr(s),
                src_mask: u64::MAX,
                dst: gpr(d),
                uses,
            },
            (Operand::Imm(i), Operand::Reg(d)) => Micro::MovIR {
                imm: *i as u64,
                dst: gpr(d),
            },
            _ => Micro::Other,
        },
        Opcode::Movabs => match (&ops[0], &ops[1]) {
            (Operand::Imm(i), Operand::Reg(d)) => Micro::MovIR {
                imm: *i as u64,
                dst: gpr(d),
            },
            _ => Micro::Other,
        },
        Opcode::Movzbq => match (&ops[0], &ops[1]) {
            (Operand::Reg(s), Operand::Reg(d)) => Micro::MovRR {
                src: gpr(s),
                src_mask: 0xff,
                dst: gpr(d),
                uses,
            },
            _ => Micro::Other,
        },
        Opcode::Alu(op, Width::Q)
            if matches!(
                op,
                AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor
            ) =>
        {
            match (&ops[0], &ops[1]) {
                (Operand::Reg(s), Operand::Reg(d)) => Micro::AluQ {
                    op,
                    src: Src::Reg(gpr(s)),
                    dst: gpr(d),
                    write_back: true,
                    uses,
                },
                (Operand::Imm(i), Operand::Reg(d)) => Micro::AluQ {
                    op,
                    src: Src::Imm(*i as u64),
                    dst: gpr(d),
                    write_back: true,
                    uses,
                },
                _ => Micro::Other,
            }
        }
        Opcode::Cmp(Width::Q) => match (&ops[0], &ops[1]) {
            (Operand::Reg(s), Operand::Reg(d)) => Micro::AluQ {
                op: AluOp::Sub,
                src: Src::Reg(gpr(s)),
                dst: gpr(d),
                write_back: false,
                uses,
            },
            (Operand::Imm(i), Operand::Reg(d)) => Micro::AluQ {
                op: AluOp::Sub,
                src: Src::Imm(*i as u64),
                dst: gpr(d),
                write_back: false,
                uses,
            },
            _ => Micro::Other,
        },
        Opcode::Set(c) => match &ops[0] {
            Operand::Reg(d) => Micro::SetR {
                cond: c,
                dst: gpr(d),
                uses,
            },
            _ => Micro::Other,
        },
        Opcode::Shift(op, Width::Q) => match (&ops[0], &ops[1]) {
            (Operand::Imm(i), Operand::Reg(d)) => {
                let count = (*i as u64 & 0x3f) as u32;
                if count == 0 {
                    // A zero-count shift only rewrites the destination with
                    // its own value (flags untouched) — exactly a self-move.
                    Micro::MovRR {
                        src: gpr(d),
                        src_mask: u64::MAX,
                        dst: gpr(d),
                        uses,
                    }
                } else {
                    Micro::ShiftQ {
                        op,
                        count,
                        dst: gpr(d),
                        uses,
                    }
                }
            }
            _ => Micro::Other,
        },
        Opcode::Mul1(Width::Q) => match &ops[0] {
            Operand::Reg(s) => Micro::Mul1Q { src: gpr(s), uses },
            _ => Micro::Other,
        },
        Opcode::Imul2(Width::Q) => match (&ops[0], &ops[1]) {
            (Operand::Reg(s), Operand::Reg(d)) => Micro::Imul2Q {
                src: Src::Reg(gpr(s)),
                dst: gpr(d),
                uses,
            },
            (Operand::Imm(i), Operand::Reg(d)) => Micro::Imul2Q {
                src: Src::Imm(*i as u64),
                dst: gpr(d),
                uses,
            },
            _ => Micro::Other,
        },
        _ => Micro::Other,
    }
}

/// A [`PreparedProgram`] paired with a per-instruction fn-pointer handler
/// table (threaded-code style), executing across all live columns of a
/// [`BatchState`] in lockstep.
///
/// Handlers are selected once at prepare time — per MCMC proposal — so the
/// per-step dispatch is a single indirect call, and the per-column inner
/// loop runs one instruction's semantics with perfectly predictable
/// branches.
///
/// ```
/// use stoke_emu::{BatchedProgram, MachineState, PreparedProgram};
/// use stoke_x86::{Gpr, Program};
///
/// let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
/// let prepared = PreparedProgram::of_program(&p);
/// let batched = BatchedProgram::new(&prepared);
/// let inputs: Vec<MachineState> = (0..4)
///     .map(|i| {
///         let mut s = MachineState::new();
///         s.set_gpr64(Gpr::Rdi, i);
///         s.set_gpr64(Gpr::Rsi, 40);
///         s
///     })
///     .collect();
/// for (i, out) in batched.run_batch(&inputs).iter().enumerate() {
///     assert_eq!(out.state.read_gpr64(Gpr::Rax), 40 + i as u64);
///     assert!(out.faults.is_clean());
/// }
/// ```
pub struct BatchedProgram<'p> {
    prepared: &'p PreparedProgram<'p>,
    handlers: Vec<Handler>,
    micros: Vec<Micro>,
}

impl<'p> BatchedProgram<'p> {
    /// Build the handler table for a prepared program.
    pub fn new(prepared: &'p PreparedProgram<'p>) -> BatchedProgram<'p> {
        let mut handlers = Vec::with_capacity(prepared.instrs.len());
        let mut micros = Vec::with_capacity(prepared.instrs.len());
        for (idx, instr) in prepared.instrs.iter().enumerate() {
            let micro = decode(instr, prepared, idx);
            let spans = &prepared.spans[idx];
            let no_uses = spans.gpr.0 == spans.gpr.1
                && spans.xmm.0 == spans.xmm.1
                && spans.flag.0 == spans.flag.1;
            let handler = match micro {
                Micro::LoadQ { .. } => step_load_q as Handler,
                Micro::StoreQ { .. } => step_store_q as Handler,
                Micro::MovRR { .. } => step_mov_rr as Handler,
                Micro::MovIR { .. } => step_mov_ir as Handler,
                Micro::AluQ { .. } => step_alu_q as Handler,
                Micro::SetR { .. } => step_set_r as Handler,
                Micro::ShiftQ { .. } => step_shift_q as Handler,
                Micro::Mul1Q { .. } => step_mul1_q as Handler,
                Micro::Imul2Q { .. } => step_imul2_q as Handler,
                Micro::Other => match instr.opcode() {
                    Opcode::Nop => step_nop as Handler,
                    _ if no_uses => step_no_uses as Handler,
                    _ => step_generic as Handler,
                },
            };
            handlers.push(handler);
            micros.push(micro);
        }
        BatchedProgram {
            prepared,
            handlers,
            micros,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// The cached static latency `H(R)` (Equation 13) of the underlying
    /// prepared program.
    pub fn static_latency(&self) -> u64 {
        self.prepared.static_latency()
    }

    /// Apply instruction `idx` across all live columns of `state`.
    fn step(&self, idx: usize, state: &mut BatchState) {
        (self.handlers[idx])(self, idx, state);
    }

    /// Run the program across all live columns of `state`, in lockstep:
    /// instruction 0 on every column, then instruction 1, and so on.
    /// Columns killed before the call stay dead; execution stops early if
    /// no column is live.
    pub fn run_lockstep(&self, state: &mut BatchState) {
        self.run_lockstep_with(state, |_| true);
    }

    /// [`run_lockstep`](BatchedProgram::run_lockstep) with a
    /// per-instruction-step predicate: after each instruction has been
    /// applied to every live column, `after_step` may inspect the batch,
    /// [`kill`](BatchState::kill) columns that a cost bound has already
    /// ruled out (the §4.5 early exit), and return `false` to abandon the
    /// whole run.
    pub fn run_lockstep_with(
        &self,
        state: &mut BatchState,
        after_step: impl FnMut(&mut BatchState) -> bool,
    ) {
        self.run_lockstep_with_from(state, 0, after_step);
    }

    /// [`run_lockstep_with`](BatchedProgram::run_lockstep_with) starting at
    /// instruction index `from` instead of 0: the suffix `from..len` runs,
    /// the prefix is assumed to have already been applied to `state` (e.g.
    /// restored from a [`PrefixCheckpoints`] snapshot). `from == len`
    /// executes nothing.
    pub fn run_lockstep_with_from(
        &self,
        state: &mut BatchState,
        from: usize,
        mut after_step: impl FnMut(&mut BatchState) -> bool,
    ) {
        for (idx, handler) in self.handlers.iter().enumerate().skip(from) {
            if state.live_cols == 0 {
                return;
            }
            handler(self, idx, state);
            if !after_step(state) {
                return;
            }
        }
    }

    /// Convenience entry point: load `inputs` into a fresh batch, run to
    /// completion, and extract one [`Outcome`] per column — the batched
    /// equivalent of calling
    /// [`run_prepared`](PreparedProgram::run_prepared) per input. Hot
    /// paths should instead hold a reusable [`BatchState`] and call
    /// [`load`](BatchState::load) + [`run_lockstep`](Self::run_lockstep).
    pub fn run_batch<'s, I>(&self, inputs: I) -> Vec<Outcome>
    where
        I: IntoIterator<Item = &'s MachineState>,
        I::IntoIter: ExactSizeIterator,
    {
        let mut state = BatchState::new();
        state.load(inputs);
        self.run_lockstep(&mut state);
        (0..state.width())
            .map(|col| Outcome {
                state: state.column_state(col),
                faults: state.faults(col),
            })
            .collect()
    }
}

/// A full snapshot of a [`BatchState`] taken after `pos` instructions of a
/// committed program: every column row, defined-ness mask, fault counter,
/// memory image and dirty range. Restoring it is equivalent to reloading
/// the batch from its inputs and executing the committed program's first
/// `pos` instructions.
#[derive(Debug, Clone, Default)]
struct Checkpoint {
    /// Number of leading instructions of the committed program whose
    /// effects this snapshot contains.
    pos: usize,
    /// Batch width the snapshot was taken at.
    n: usize,
    /// Input-image epoch ([`PrefixCheckpoints::epoch`]) the memory buffers
    /// were last captured under. A matching epoch proves the buffers
    /// already equal the input images outside their recorded dirty ranges,
    /// so re-capture can copy only dirty ranges instead of full images.
    epoch: u64,
    gprs: Vec<u64>,
    xmms: Vec<XmmValue>,
    flags: Vec<bool>,
    gpr_defined: Vec<bool>,
    xmm_defined: Vec<bool>,
    flag_defined: Vec<bool>,
    memories: Vec<Memory>,
    faults: Vec<Faults>,
    dirty: Vec<(u64, u64)>,
}

impl Checkpoint {
    /// Overwrite this snapshot with the current batch state (reusing every
    /// allocation, including the per-column memory images).
    ///
    /// Register rows, masks and fault counters are copied wholesale (they
    /// are small); memory images are the expensive part, so when this
    /// buffer's images are provably based on the same inputs — same
    /// `epoch`, same width — only the union of each column's previous and
    /// current dirty range is copied. Everything outside that union
    /// already equals the input image in both buffer and batch, because
    /// sandboxed stores never touch it.
    fn capture(&mut self, state: &BatchState, pos: usize, epoch: u64) {
        let base_ok = self.epoch == epoch
            && self.n == state.n
            && self.memories.len() == state.n
            && self.dirty.len() == state.n;
        self.pos = pos;
        self.n = state.n;
        self.epoch = epoch;
        self.gprs.clear();
        self.gprs.extend_from_slice(&state.gprs);
        self.xmms.clear();
        self.xmms.extend_from_slice(&state.xmms);
        self.flags.clear();
        self.flags.extend_from_slice(&state.flags);
        self.gpr_defined.clear();
        self.gpr_defined.extend_from_slice(&state.gpr_defined);
        self.xmm_defined.clear();
        self.xmm_defined.extend_from_slice(&state.xmm_defined);
        self.flag_defined.clear();
        self.flag_defined.extend_from_slice(&state.flag_defined);
        self.faults.clear();
        self.faults.extend_from_slice(&state.faults);
        if base_ok {
            for col in 0..state.n {
                let (slo, shi) = state.dirty[col];
                let (clo, chi) = self.dirty[col];
                let lo = slo.min(clo);
                let hi = shi.max(chi);
                if lo < hi {
                    self.memories[col].copy_range_from(&state.memories[col], lo, hi);
                }
                debug_assert_eq!(
                    self.memories[col], state.memories[col],
                    "dirty-range capture requires buffers based on the same inputs"
                );
            }
        } else {
            self.memories.truncate(state.n);
            while self.memories.len() < state.n {
                self.memories.push(Memory::new());
            }
            for (mine, theirs) in self.memories.iter_mut().zip(&state.memories) {
                mine.copy_from(theirs);
            }
        }
        self.dirty.clear();
        self.dirty.extend_from_slice(&state.dirty);
    }

    /// Restore this snapshot into `state`. The batch must currently hold
    /// scratch derived from the *same* inputs the snapshot was built from
    /// (the usual reload invariant): each column's memory is then brought
    /// back to the snapshot by copying only the union of the two dirty
    /// ranges, every column is revived, and registers, flags, defined-ness
    /// masks and fault counters are copied wholesale.
    fn restore(&self, state: &mut BatchState) {
        debug_assert_eq!(self.n, state.n, "checkpoint width mismatch");
        state.gprs.copy_from_slice(&self.gprs);
        state.xmms.copy_from_slice(&self.xmms);
        state.flags.copy_from_slice(&self.flags);
        state.gpr_defined.copy_from_slice(&self.gpr_defined);
        state.xmm_defined.copy_from_slice(&self.xmm_defined);
        state.flag_defined.copy_from_slice(&self.flag_defined);
        state.faults.copy_from_slice(&self.faults);
        state.live.fill(true);
        state.live_cols = state.n;
        for col in 0..state.n {
            let (slo, shi) = state.dirty[col];
            let (clo, chi) = self.dirty[col];
            let lo = slo.min(clo);
            let hi = shi.max(chi);
            if lo < hi {
                state.memories[col].copy_range_from(&self.memories[col], lo, hi);
            }
            state.dirty[col] = self.dirty[col];
            debug_assert_eq!(
                state.memories[col], self.memories[col],
                "checkpoint restore requires scratch derived from the same inputs"
            );
        }
    }
}

/// Prefix checkpoints over a committed straight-line program: the engine
/// behind `BackendSpec::Incremental`.
///
/// The MCMC proposals of §4.3 differ from the current rewrite in at most
/// two instruction slots, so the execution of the unmodified *prefix* is
/// byte-identical between the current rewrite and the proposal. This store
/// snapshots the whole [`BatchState`] every `interval` instructions of the
/// last *committed* (accepted) program; evaluating a proposal whose first
/// modified instruction is at dense index `f` then
/// [`restore`](PrefixCheckpoints::restore)s the deepest snapshot at
/// position ≤ `f` and executes only the suffix
/// ([`BatchedProgram::run_lockstep_with_from`]).
///
/// Protocol:
///
/// - [`commit`](PrefixCheckpoints::commit) after a proposal is *accepted*
///   (and once for the starting rewrite, with `keep_prefix = 0`):
///   snapshots at positions > `keep_prefix` are invalidated, the batch is
///   restored from the deepest survivor (or reloaded from the inputs), and
///   the new program is re-executed from there, snapshotting along the
///   way. Rejected proposals need nothing — the snapshots still describe
///   the current program.
/// - Snapshots *and recycled snapshot buffers* are tied to the inputs
///   loaded at commit time: call [`clear`](PrefixCheckpoints::clear) after
///   the suite changes (it also invalidates the allocation pool's claim to
///   the old input images, forcing the next captures to rebuild them). A
///   width change invalidates every snapshot automatically.
#[derive(Debug, Clone, Default)]
pub struct PrefixCheckpoints {
    /// Valid snapshots, sorted by `pos` ascending.
    checkpoints: Vec<Checkpoint>,
    /// Invalidated snapshots kept as an allocation pool.
    spare: Vec<Checkpoint>,
    /// Snapshot spacing the current snapshots were built with.
    interval: usize,
    /// Input-image epoch: bumped by [`clear`](PrefixCheckpoints::clear) so
    /// that [`Checkpoint::capture`] falls back to full memory copies for
    /// buffers built against a previous suite, and copies only dirty
    /// ranges otherwise.
    epoch: u64,
}

impl PrefixCheckpoints {
    /// An empty store: the first [`commit`](PrefixCheckpoints::commit)
    /// builds the initial snapshots.
    pub fn new() -> PrefixCheckpoints {
        PrefixCheckpoints::default()
    }

    /// Drop every snapshot (keeping their allocations for reuse). Also
    /// marks every buffer as based on unknown inputs, so this is the call
    /// to make when the suite changes.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.spare.append(&mut self.checkpoints);
    }

    /// Number of valid snapshots currently held.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether no snapshot is currently held.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Restore the deepest snapshot at position ≤ `upto` into `state` and
    /// return its position — the caller then executes only `pos..` of the
    /// program. Returns `None` (and leaves `state` untouched) when no such
    /// snapshot exists or the batch width changed; the caller falls back
    /// to a full [`reload`](BatchState::reload) + run from 0.
    pub fn restore(&self, state: &mut BatchState, upto: usize) -> Option<usize> {
        let cp = self
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.pos <= upto && c.n == state.n && state.n > 0)?;
        cp.restore(state);
        Some(cp.pos)
    }

    /// Commit `program` as the new baseline, reusing snapshots at
    /// positions ≤ `keep_prefix` (the dense length of the prefix shared
    /// with the previously committed program; pass 0 for an unrelated
    /// program or a fresh suite).
    ///
    /// Invalidated snapshots are recycled; the batch is restored from the
    /// deepest survivor (or reloaded from `inputs`, which must be the same
    /// states every evaluation of this batch uses), and the program is
    /// re-executed from there with a snapshot every `interval`
    /// instructions plus one at the program's end (so proposals editing
    /// past the end — e.g. filling a trailing `UNUSED` slot — skip the
    /// entire committed program). On return the batch holds the program's
    /// final state.
    pub fn commit<'s, I>(
        &mut self,
        program: &BatchedProgram<'_>,
        state: &mut BatchState,
        inputs: I,
        keep_prefix: usize,
        interval: usize,
    ) where
        I: IntoIterator<Item = &'s MachineState>,
        I::IntoIter: ExactSizeIterator,
    {
        let interval = interval.max(1);
        let len = program.len();
        let inputs = inputs.into_iter();
        if interval != self.interval {
            self.clear();
            self.interval = interval;
        }
        // Invalidate snapshots the edit (or a width change) made stale.
        let mut i = 0;
        while i < self.checkpoints.len() {
            let c = &self.checkpoints[i];
            if c.pos > keep_prefix || c.pos > len || c.n != inputs.len() {
                self.spare.push(self.checkpoints.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.checkpoints.sort_by_key(|c| c.pos);
        let resume = match self.restore(state, keep_prefix) {
            Some(pos) => pos,
            None => {
                state.reload(inputs);
                0
            }
        };
        for idx in resume..len {
            if state.live_cols == 0 {
                break;
            }
            program.step(idx, state);
            let pos = idx + 1;
            if (pos.is_multiple_of(interval) || pos == len) && pos > resume {
                let mut cp = self.spare.pop().unwrap_or_default();
                cp.capture(state, pos, self.epoch);
                self.checkpoints.push(cp);
            }
        }
        debug_assert!(self.checkpoints.windows(2).all(|w| w[0].pos < w[1].pos));
    }
}

/// Row-pass undefined-read counter for the all-live fast paths: walks each
/// pre-resolved use row once across all columns, accumulating branchlessly
/// into the per-column fault counters. Counts exactly what the per-column
/// scan counts (same rows, same totals).
#[inline]
fn count_undef_rows(state: &mut BatchState, uses: &Uses) {
    let n = state.n;
    for k in 0..uses.ngpr as usize {
        let row = uses.gpr[k] as usize * n;
        let def = &state.gpr_defined[row..row + n];
        for (f, d) in state.faults.iter_mut().zip(def) {
            f.undef += u64::from(!*d);
        }
    }
    for k in 0..uses.nflag as usize {
        let row = uses.flag[k] as usize * n;
        let def = &state.flag_defined[row..row + n];
        for (f, d) in state.faults.iter_mut().zip(def) {
            f.undef += u64::from(!*d);
        }
    }
}

/// Split a `5 * n` row-major flag vector into its five disjoint rows,
/// indexable by [`Flag::index`] (Cf, Zf, Sf, Of, Pf).
#[inline]
fn rows5<T>(v: &mut [T], n: usize) -> [&mut [T]; 5] {
    let (cf, rest) = v.split_at_mut(n);
    let (zf, rest) = rest.split_at_mut(n);
    let (sf, rest) = rest.split_at_mut(n);
    let (of, pf) = rest.split_at_mut(n);
    [cf, zf, sf, of, pf]
}

/// Two disjoint width-`n` rows of a row-major vector, mutably.
#[inline]
fn two_rows(v: &mut [u64], a0: usize, b0: usize, n: usize) -> (&mut [u64], &mut [u64]) {
    debug_assert!(a0 + n <= b0 || b0 + n <= a0, "rows must not overlap");
    if a0 < b0 {
        let (x, y) = v.split_at_mut(b0);
        (&mut x[a0..a0 + n], &mut y[..n])
    } else {
        let (x, y) = v.split_at_mut(a0);
        (&mut y[..n], &mut x[b0..b0 + n])
    }
}

/// Count undefined reads for a specialized handler: one check per
/// pre-resolved use row, element-for-element identical to the sequential
/// span scan.
#[inline]
fn count_undef(state: &mut BatchState, col: usize, uses: &Uses) {
    let n = state.n;
    for k in 0..uses.ngpr as usize {
        if !state.gpr_defined[uses.gpr[k] as usize * n + col] {
            state.faults[col].undef += 1;
        }
    }
    for k in 0..uses.nflag as usize {
        if !state.flag_defined[uses.flag[k] as usize * n + col] {
            state.faults[col].undef += 1;
        }
    }
}

/// Specialized handler for `movq disp(base), dst`.
fn step_load_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::LoadQ {
        base,
        disp,
        dst,
        uses,
    } = bp.micros[idx]
    else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let (b0, d0) = (base as usize * n, dst as usize * n);
    if n != 0 && state.live_cols == n && state.uniform_layout {
        count_undef_rows(state, &uses);
        for (t, b) in state.tmp.iter_mut().zip(&state.gprs[b0..b0 + n]) {
            *t = b.wrapping_add(disp);
        }
        // All images share one layout, so a resolved (segment, offset)
        // carries across columns; compiled code mostly computes the same
        // address in every column (fixed stack slots), making this one
        // resolution per step.
        let mut cached = (state.tmp[0], state.memories[0].resolve8(state.tmp[0]));
        for col in 0..n {
            let addr = state.tmp[col];
            if addr != cached.0 {
                cached = (addr, state.memories[col].resolve8(addr));
            }
            let value = match cached.1 {
                Some((si, j)) => state.memories[col].read8_at(si, j),
                None => {
                    state.faults[col].sigsegv += 1;
                    0
                }
            };
            state.gprs[d0 + col] = value;
        }
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let addr = state.gprs[b0 + col].wrapping_add(disp);
        let value = match state.memories[col].load(addr, 8) {
            Some(v) => v,
            None => {
                state.faults[col].sigsegv += 1;
                0
            }
        };
        state.gprs[d0 + col] = value;
        state.gpr_defined[d0 + col] = true;
    }
}

/// Specialized handler for `movq src, disp(base)`.
fn step_store_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::StoreQ {
        src,
        base,
        disp,
        uses,
    } = bp.micros[idx]
    else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let (s0, b0) = (src as usize * n, base as usize * n);
    if n != 0 && state.live_cols == n && state.uniform_layout {
        count_undef_rows(state, &uses);
        for (t, b) in state.tmp.iter_mut().zip(&state.gprs[b0..b0 + n]) {
            *t = b.wrapping_add(disp);
        }
        let mut cached = (state.tmp[0], state.memories[0].resolve8(state.tmp[0]));
        for col in 0..n {
            let addr = state.tmp[col];
            if addr != cached.0 {
                cached = (addr, state.memories[col].resolve8(addr));
            }
            match cached.1 {
                Some((si, j)) => {
                    state.memories[col].write8_at(si, j, state.gprs[s0 + col]);
                    let d = &mut state.dirty[col];
                    d.0 = d.0.min(addr);
                    d.1 = d.1.max(addr + 8);
                }
                None => state.faults[col].sigsegv += 1,
            }
        }
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let addr = state.gprs[b0 + col].wrapping_add(disp);
        let value = state.gprs[s0 + col];
        if !state.store_dirty(col, addr, value, 8) {
            state.faults[col].sigsegv += 1;
        }
    }
}

/// Specialized handler for the register-to-register moves (`movq`,
/// `movzbq`).
fn step_mov_rr(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::MovRR {
        src,
        src_mask,
        dst,
        uses,
    } = bp.micros[idx]
    else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let (s0, d0) = (src as usize * n, dst as usize * n);
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        state.gprs.copy_within(s0..s0 + n, d0);
        if src_mask != u64::MAX {
            for g in &mut state.gprs[d0..d0 + n] {
                *g &= src_mask;
            }
        }
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        state.gprs[d0 + col] = state.gprs[s0 + col] & src_mask;
        state.gpr_defined[d0 + col] = true;
    }
}

/// Specialized handler for `movq imm, dst` / `movabsq imm, dst`.
fn step_mov_ir(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::MovIR { imm, dst } = bp.micros[idx] else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let d0 = dst as usize * n;
    if state.live_cols == n {
        state.gprs[d0..d0 + n].fill(imm);
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        state.gprs[d0 + col] = imm;
        state.gpr_defined[d0 + col] = true;
    }
}

/// Specialized handler for the carry-free 64-bit ALU ops and `cmpq`:
/// result (unless it is a compare) plus the five status flags, written to
/// contiguous flag rows.
fn step_alu_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::AluQ {
        op,
        src,
        dst,
        write_back,
        uses,
    } = bp.micros[idx]
    else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let d0 = dst as usize * n;
    let (cf0, zf0, sf0, of0, pf0) = (
        Flag::Cf.index() * n,
        Flag::Zf.index() * n,
        Flag::Sf.index() * n,
        Flag::Of.index() * n,
        Flag::Pf.index() * n,
    );
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        match src {
            Src::Reg(r) => {
                let r0 = r as usize * n;
                state.tmp.copy_from_slice(&state.gprs[r0..r0 + n]);
            }
            Src::Imm(v) => state.tmp.fill(v),
        }
        let [cf, zf, sf, of, pf] = rows5(&mut state.flags, n);
        let dst_row = &mut state.gprs[d0..d0 + n];
        for col in 0..n {
            let s = state.tmp[col];
            let d = dst_row[col];
            let (r, cfv, ofv) = match op {
                AluOp::Add => {
                    let r = d.wrapping_add(s);
                    (r, r < d, ((d ^ s) as i64) >= 0 && ((r ^ d) as i64) < 0)
                }
                AluOp::Sub => {
                    let r = d.wrapping_sub(s);
                    (r, d < s, ((d ^ s) as i64) < 0 && ((r ^ d) as i64) < 0)
                }
                AluOp::And => (d & s, false, false),
                AluOp::Or => (d | s, false, false),
                AluOp::Xor => (d ^ s, false, false),
                AluOp::Adc | AluOp::Sbb => unreachable!("carry-in ops are never specialized"),
            };
            cf[col] = cfv;
            of[col] = ofv;
            zf[col] = r == 0;
            sf[col] = (r as i64) < 0;
            pf[col] = (r as u8).count_ones().is_multiple_of(2);
            if write_back {
                dst_row[col] = r;
            }
        }
        state.flag_defined.fill(true);
        if write_back {
            state.gpr_defined[d0..d0 + n].fill(true);
        }
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let s = match src {
            Src::Reg(r) => state.gprs[r as usize * n + col],
            Src::Imm(v) => v,
        };
        let d = state.gprs[d0 + col];
        // Same carry/overflow definitions as `Cpu::set_flags_add`/`_sub`,
        // reduced to 64-bit arithmetic.
        let (r, cf, of) = match op {
            AluOp::Add => {
                let r = d.wrapping_add(s);
                (r, r < d, ((d ^ s) as i64) >= 0 && ((r ^ d) as i64) < 0)
            }
            AluOp::Sub => {
                let r = d.wrapping_sub(s);
                (r, d < s, ((d ^ s) as i64) < 0 && ((r ^ d) as i64) < 0)
            }
            AluOp::And => (d & s, false, false),
            AluOp::Or => (d | s, false, false),
            AluOp::Xor => (d ^ s, false, false),
            AluOp::Adc | AluOp::Sbb => unreachable!("carry-in ops are never specialized"),
        };
        state.flags[cf0 + col] = cf;
        state.flag_defined[cf0 + col] = true;
        state.flags[of0 + col] = of;
        state.flag_defined[of0 + col] = true;
        state.flags[zf0 + col] = r == 0;
        state.flag_defined[zf0 + col] = true;
        state.flags[sf0 + col] = (r as i64) < 0;
        state.flag_defined[sf0 + col] = true;
        state.flags[pf0 + col] = (r as u8).count_ones().is_multiple_of(2);
        state.flag_defined[pf0 + col] = true;
        if write_back {
            state.gprs[d0 + col] = r;
            state.gpr_defined[d0 + col] = true;
        }
    }
}

/// Specialized handler for `set{cc} dst` on a byte register: evaluate the
/// condition from the flag rows and merge the 0/1 byte into the
/// destination's low byte.
fn step_set_r(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::SetR { cond, dst, uses } = bp.micros[idx] else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let d0 = dst as usize * n;
    let (cf0, zf0, sf0, of0) = (
        Flag::Cf.index() * n,
        Flag::Zf.index() * n,
        Flag::Sf.index() * n,
        Flag::Of.index() * n,
    );
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        let (cf, zf, sf, of) = (
            &state.flags[cf0..cf0 + n],
            &state.flags[zf0..zf0 + n],
            &state.flags[sf0..sf0 + n],
            &state.flags[of0..of0 + n],
        );
        let dst_row = &mut state.gprs[d0..d0 + n];
        for col in 0..n {
            let v = u64::from(cond.eval(cf[col], zf[col], sf[col], of[col]));
            dst_row[col] = merge_reg_write(dst_row[col], Width::B, v);
        }
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let v = u64::from(cond.eval(
            state.flags[cf0 + col],
            state.flags[zf0 + col],
            state.flags[sf0 + col],
            state.flags[of0 + col],
        ));
        state.gprs[d0 + col] = merge_reg_write(state.gprs[d0 + col], Width::B, v);
        state.gpr_defined[d0 + col] = true;
    }
}

/// Specialized handler for the 64-bit shifts and rotates by a nonzero
/// immediate count (`1..=63`, masked at decode time). Same result and flag
/// definitions as the interpreter's `Opcode::Shift` arm reduced to
/// `Width::Q`.
fn step_shift_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::ShiftQ {
        op,
        count,
        dst,
        uses,
    } = bp.micros[idx]
    else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let d0 = dst as usize * n;
    let (cf0, zf0, sf0, of0, pf0) = (
        Flag::Cf.index() * n,
        Flag::Zf.index() * n,
        Flag::Sf.index() * n,
        Flag::Of.index() * n,
        Flag::Pf.index() * n,
    );
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        let [cf, zf, sf, of, pf] = rows5(&mut state.flags, n);
        let dst_row = &mut state.gprs[d0..d0 + n];
        for col in 0..n {
            let a = dst_row[col];
            let (r, cfv) = match op {
                ShiftOp::Shl => (a << count, (a >> (64 - count)) & 1 == 1),
                ShiftOp::Shr => (a >> count, (a >> (count - 1)) & 1 == 1),
                ShiftOp::Sar => {
                    let sa = a as i64;
                    ((sa >> count) as u64, (sa >> (count - 1)) & 1 == 1)
                }
                ShiftOp::Rol => {
                    let r = a.rotate_left(count);
                    (r, r & 1 == 1)
                }
                ShiftOp::Ror => {
                    let r = a.rotate_right(count);
                    (r, (r as i64) < 0)
                }
            };
            cf[col] = cfv;
            match op {
                ShiftOp::Rol | ShiftOp::Ror => {
                    of[col] = ((r as i64) < 0) ^ ((r >> 62) & 1 == 1);
                }
                _ => {
                    of[col] = ((r as i64) < 0) ^ cfv;
                    zf[col] = r == 0;
                    sf[col] = (r as i64) < 0;
                    pf[col] = (r as u8).count_ones().is_multiple_of(2);
                }
            }
            dst_row[col] = r;
        }
        let [cfd, zfd, sfd, ofd, pfd] = rows5(&mut state.flag_defined, n);
        cfd.fill(true);
        ofd.fill(true);
        if !matches!(op, ShiftOp::Rol | ShiftOp::Ror) {
            zfd.fill(true);
            sfd.fill(true);
            pfd.fill(true);
        }
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let a = state.gprs[d0 + col];
        let (r, cf) = match op {
            ShiftOp::Shl => (a << count, (a >> (64 - count)) & 1 == 1),
            ShiftOp::Shr => (a >> count, (a >> (count - 1)) & 1 == 1),
            ShiftOp::Sar => {
                let sa = a as i64;
                ((sa >> count) as u64, (sa >> (count - 1)) & 1 == 1)
            }
            ShiftOp::Rol => {
                let r = a.rotate_left(count);
                (r, r & 1 == 1)
            }
            ShiftOp::Ror => {
                let r = a.rotate_right(count);
                (r, (r as i64) < 0)
            }
        };
        state.flags[cf0 + col] = cf;
        state.flag_defined[cf0 + col] = true;
        match op {
            ShiftOp::Rol | ShiftOp::Ror => {
                state.flags[of0 + col] = ((r as i64) < 0) ^ ((r >> 62) & 1 == 1);
                state.flag_defined[of0 + col] = true;
            }
            _ => {
                state.flags[of0 + col] = ((r as i64) < 0) ^ cf;
                state.flag_defined[of0 + col] = true;
                state.flags[zf0 + col] = r == 0;
                state.flag_defined[zf0 + col] = true;
                state.flags[sf0 + col] = (r as i64) < 0;
                state.flag_defined[sf0 + col] = true;
                state.flags[pf0 + col] = (r as u8).count_ones().is_multiple_of(2);
                state.flag_defined[pf0 + col] = true;
            }
        }
        state.gprs[d0 + col] = r;
        state.gpr_defined[d0 + col] = true;
    }
}

/// Specialized handler for `mulq src`: widening unsigned multiply of
/// `rax` by `src` into `rdx:rax`, with CF/OF set iff the high half is
/// nonzero and the result flags taken from the low half.
fn step_mul1_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::Mul1Q { src, uses } = bp.micros[idx] else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let s0 = src as usize * n;
    let (rax0, rdx0) = (Gpr::Rax.index() * n, Gpr::Rdx.index() * n);
    let (cf0, zf0, sf0, of0, pf0) = (
        Flag::Cf.index() * n,
        Flag::Zf.index() * n,
        Flag::Sf.index() * n,
        Flag::Of.index() * n,
        Flag::Pf.index() * n,
    );
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        // `src` may alias rax or rdx; snapshot its row before writing.
        state.tmp.copy_from_slice(&state.gprs[s0..s0 + n]);
        let (rax, rdx) = two_rows(&mut state.gprs, rax0, rdx0, n);
        let [cf, zf, sf, of, pf] = rows5(&mut state.flags, n);
        for col in 0..n {
            let full = u128::from(state.tmp[col]) * u128::from(rax[col]);
            let lo = full as u64;
            let hi = (full >> 64) as u64;
            rax[col] = lo;
            rdx[col] = hi;
            let overflow = hi != 0;
            cf[col] = overflow;
            of[col] = overflow;
            zf[col] = lo == 0;
            sf[col] = (lo as i64) < 0;
            pf[col] = (lo as u8).count_ones().is_multiple_of(2);
        }
        state.gpr_defined[rax0..rax0 + n].fill(true);
        state.gpr_defined[rdx0..rdx0 + n].fill(true);
        state.flag_defined.fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let full = u128::from(state.gprs[s0 + col]) * u128::from(state.gprs[rax0 + col]);
        let lo = full as u64;
        let hi = (full >> 64) as u64;
        state.gprs[rax0 + col] = lo;
        state.gpr_defined[rax0 + col] = true;
        state.gprs[rdx0 + col] = hi;
        state.gpr_defined[rdx0 + col] = true;
        let overflow = hi != 0;
        state.flags[cf0 + col] = overflow;
        state.flag_defined[cf0 + col] = true;
        state.flags[of0 + col] = overflow;
        state.flag_defined[of0 + col] = true;
        state.flags[zf0 + col] = lo == 0;
        state.flag_defined[zf0 + col] = true;
        state.flags[sf0 + col] = (lo as i64) < 0;
        state.flag_defined[sf0 + col] = true;
        state.flags[pf0 + col] = (lo as u8).count_ones().is_multiple_of(2);
        state.flag_defined[pf0 + col] = true;
    }
}

/// Specialized handler for `imulq src, dst`: two-operand signed multiply
/// with CF/OF set iff the full 128-bit product does not fit the 64-bit
/// destination.
fn step_imul2_q(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let Micro::Imul2Q { src, dst, uses } = bp.micros[idx] else {
        unreachable!("handler matches its micro-op")
    };
    let n = state.n;
    let d0 = dst as usize * n;
    let (cf0, zf0, sf0, of0, pf0) = (
        Flag::Cf.index() * n,
        Flag::Zf.index() * n,
        Flag::Sf.index() * n,
        Flag::Of.index() * n,
        Flag::Pf.index() * n,
    );
    if state.live_cols == n {
        count_undef_rows(state, &uses);
        match src {
            Src::Reg(r) => {
                let r0 = r as usize * n;
                state.tmp.copy_from_slice(&state.gprs[r0..r0 + n]);
            }
            Src::Imm(v) => state.tmp.fill(v),
        }
        let [cf, zf, sf, of, pf] = rows5(&mut state.flags, n);
        let dst_row = &mut state.gprs[d0..d0 + n];
        for col in 0..n {
            let s = state.tmp[col];
            let d = dst_row[col];
            let full = (s as i64 as i128) * (d as i64 as i128);
            let r = full as u64;
            let overflow = full != (r as i64 as i128);
            cf[col] = overflow;
            of[col] = overflow;
            zf[col] = r == 0;
            sf[col] = (r as i64) < 0;
            pf[col] = (r as u8).count_ones().is_multiple_of(2);
            dst_row[col] = r;
        }
        state.flag_defined.fill(true);
        state.gpr_defined[d0..d0 + n].fill(true);
        return;
    }
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        count_undef(state, col, &uses);
        let s = match src {
            Src::Reg(r) => state.gprs[r as usize * n + col],
            Src::Imm(v) => v,
        };
        let d = state.gprs[d0 + col];
        let full = (s as i64 as i128) * (d as i64 as i128);
        let r = full as u64;
        let overflow = full != (r as i64 as i128);
        state.flags[cf0 + col] = overflow;
        state.flag_defined[cf0 + col] = true;
        state.flags[of0 + col] = overflow;
        state.flag_defined[of0 + col] = true;
        state.flags[zf0 + col] = r == 0;
        state.flag_defined[zf0 + col] = true;
        state.flags[sf0 + col] = (r as i64) < 0;
        state.flag_defined[sf0 + col] = true;
        state.flags[pf0 + col] = (r as u8).count_ones().is_multiple_of(2);
        state.flag_defined[pf0 + col] = true;
        state.gprs[d0 + col] = r;
        state.gpr_defined[d0 + col] = true;
    }
}

/// Handler for `nop`: no column reads or writes anything.
fn step_nop(_bp: &BatchedProgram<'_>, _idx: usize, _state: &mut BatchState) {}

/// Handler for instructions with empty use sets: skips the undefined-read
/// scan entirely.
fn step_no_uses(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let instr = bp.prepared.instrs[idx];
    for col in 0..state.n {
        if !state.live[col] {
            continue;
        }
        Col { s: state, col }.execute(instr);
    }
}

/// The general handler: per live column, count undefined reads over the
/// prepared use spans (same elements, same order as the sequential
/// backends), then execute the shared instruction semantics against the
/// column view.
fn step_generic(bp: &BatchedProgram<'_>, idx: usize, state: &mut BatchState) {
    let p = bp.prepared;
    let instr = p.instrs[idx];
    let spans = &p.spans[idx];
    let gpr_uses = &p.gpr_uses[spans.gpr.0 as usize..spans.gpr.1 as usize];
    let xmm_uses = &p.xmm_uses[spans.xmm.0 as usize..spans.xmm.1 as usize];
    let flag_uses = &p.flag_uses[spans.flag.0 as usize..spans.flag.1 as usize];
    let n = state.n;
    for col in 0..n {
        if !state.live[col] {
            continue;
        }
        for r in gpr_uses {
            if !state.gpr_defined[r.parent().index() * n + col] {
                state.faults[col].undef += 1;
            }
        }
        for x in xmm_uses {
            if !state.xmm_defined[x.index() * n + col] {
                state.faults[col].undef += 1;
            }
        }
        for f in flag_uses {
            if !state.flag_defined[f.index() * n + col] {
                state.faults[col].undef += 1;
            }
        }
        Col { s: state, col }.execute(instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Program;

    fn inputs(n: usize) -> Vec<MachineState> {
        (0..n as u64)
            .map(|i| {
                let mut s = MachineState::new();
                s.set_gpr64(Gpr::Rdi, 3 + i);
                s.set_gpr64(Gpr::Rsi, 100 * i);
                s.set_gpr64(Gpr::Rsp, 0x8000);
                s.memory.mark_valid(0x7000, 0x1010);
                s.memory.poke_wide(0x7000, 0x1111_2222_3333_4444 ^ i, 8);
                s
            })
            .collect()
    }

    fn assert_matches_prepared(text: &str, states: &[MachineState]) {
        let p: Program = text.parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        let outs = batched.run_batch(states);
        assert_eq!(outs.len(), states.len());
        for (input, out) in states.iter().zip(&outs) {
            let want = prepared.run_prepared(input);
            assert_eq!(out.state, want.state, "states diverge");
            assert_eq!(out.faults, want.faults, "faults diverge");
        }
    }

    #[test]
    fn batched_matches_prepared_on_clean_code() {
        assert_matches_prepared("movq rdi, rax\naddq rsi, rax", &inputs(5));
    }

    #[test]
    fn batched_matches_prepared_on_faulting_code() {
        // Undefined reads (rbx, flags before adc), a wild load, a store,
        // and a divide by zero.
        assert_matches_prepared(
            "addq rbx, rdi\nmovq (rbx), rcx\nmovq rdi, -8(rsp)\nxorq rdx, rdx\ndivq rdx",
            &inputs(4),
        );
    }

    #[test]
    fn batched_matches_prepared_on_memory_and_sse() {
        assert_matches_prepared(
            "movq -8(rsp), rax\nmovq rdi, (rsp)\nmovd edi, xmm0\npshufd 0, xmm0, xmm1\npaddd xmm1, xmm0",
            &inputs(3),
        );
    }

    #[test]
    fn empty_batch_and_empty_program() {
        let p: Program = "addq rsi, rdi".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        assert!(batched.run_batch(&[]).is_empty());

        let empty = PreparedProgram::new(std::iter::empty());
        let batched = BatchedProgram::new(&empty);
        assert!(batched.is_empty());
        assert_eq!(batched.static_latency(), 0);
        let states = inputs(2);
        let outs = batched.run_batch(&states);
        for (input, out) in states.iter().zip(&outs) {
            assert_eq!(&out.state, input);
            assert!(out.faults.is_clean());
        }
    }

    #[test]
    fn killed_columns_stop_faulting() {
        // Every step of this program faults in every column; killing a
        // column after the first step freezes its counters.
        let p: Program = "movq (rbx), rax\nmovq (rbx), rax\nmovq (rbx), rax"
            .parse()
            .unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        let states: Vec<MachineState> = (0..3).map(|_| MachineState::new()).collect();
        let mut batch = BatchState::new();
        batch.load(&states);
        let mut steps = 0;
        batched.run_lockstep_with(&mut batch, |state| {
            steps += 1;
            if steps == 1 {
                state.kill(2);
            }
            true
        });
        assert_eq!(steps, 3);
        assert_eq!(batch.live_columns(), 2);
        // Live columns: one undef (rbx) + one sigsegv per step.
        for col in 0..2 {
            assert_eq!(batch.faults(col).sigsegv, 3);
            assert_eq!(batch.faults(col).undef, 3);
        }
        // The killed column only saw the first step.
        assert_eq!(batch.faults(2).sigsegv, 1);
        assert!(!batch.is_live(2));
    }

    #[test]
    fn all_columns_dead_stops_the_run() {
        let p: Program = "movq (rbx), rax\nmovq (rbx), rax".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        let states = vec![MachineState::new()];
        let mut batch = BatchState::new();
        batch.load(&states);
        let mut steps = 0;
        batched.run_lockstep_with(&mut batch, |state| {
            steps += 1;
            state.kill(0);
            true
        });
        assert_eq!(steps, 1, "no live column left after the first step");
    }

    #[test]
    fn scratch_reload_resets_everything() {
        let p: Program = "addq rsi, rdi".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        let mut batch = BatchState::new();
        // First use: kill a column, accumulate faults.
        batch.load(&[MachineState::new(), MachineState::new()]);
        batch.kill(1);
        batched.run_lockstep(&mut batch);
        assert!(batch.faults(0).undef > 0);
        // Reload with different width: clean slate.
        let states = inputs(3);
        batch.load(&states);
        assert_eq!(batch.width(), 3);
        assert_eq!(batch.live_columns(), 3);
        batched.run_lockstep(&mut batch);
        for (col, input) in states.iter().enumerate() {
            let want = prepared.run_prepared(input);
            assert_eq!(batch.column_state(col), want.state);
            assert_eq!(batch.faults(col), want.faults);
        }
    }

    #[test]
    fn column_ref_reads_match_extraction() {
        let p: Program = "addq rsi, rdi\ncmpq rsi, rdi".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let batched = BatchedProgram::new(&prepared);
        let states = inputs(2);
        let mut batch = BatchState::new();
        batch.load(&states);
        batched.run_lockstep(&mut batch);
        for col in 0..2 {
            let owned = batch.column_state(col);
            let view = batch.column(col);
            for g in Gpr::ALL {
                assert_eq!(view.read_gpr64(g), owned.read_gpr64(g));
            }
            for f in Flag::ALL {
                assert_eq!(view.read_flag(f), owned.read_flag(f));
            }
            for x in Xmm::ALL {
                assert_eq!(view.read_xmm(x), owned.read_xmm(x));
            }
            assert_eq!(view.memory(), &owned.memory);
            assert_eq!(view.faults(), batch.faults(col));
        }
    }
}
