//! Concrete machine state: general purpose registers, SSE registers,
//! status flags, defined-ness tracking and the sandboxed memory image.

use std::collections::BTreeMap;
use stoke_x86::{Flag, Gpr, Reg, Width, Xmm};

/// A 128-bit SSE register value, stored as (low, high) 64-bit halves.
pub type XmmValue = [u64; 2];

/// The sandboxed memory image of a machine state.
///
/// Following §5.1 of the paper, "the set of addresses dereferenced by the
/// target are used to define the sandbox in which candidate rewrites are
/// executed": reads and writes of addresses outside `valid` are trapped,
/// counted as segmentation faults, and replaced by a constant zero value
/// (reads) or discarded (writes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Memory {
    /// Byte contents, keyed by address.
    bytes: BTreeMap<u64, u8>,
    /// Address ranges `[start, start + len)` that may legally be
    /// dereferenced. Kept as ranges (rather than a per-byte set) so that
    /// cloning a machine state — which the MCMC inner loop does for every
    /// test-case evaluation — stays cheap.
    valid: Vec<(u64, u64)>,
}

impl Memory {
    /// An empty memory image with no valid addresses.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Mark a contiguous byte range as legally dereferenceable.
    pub fn mark_valid(&mut self, addr: u64, len: u64) {
        if len > 0 {
            self.valid.push((addr, len));
        }
    }

    /// Whether every byte of `[addr, addr + len)` may be dereferenced.
    pub fn is_valid(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = match addr.checked_add(len) {
            Some(e) => e,
            None => return false,
        };
        // Fast path: a single range covers the whole access (the common
        // case); otherwise fall back to a per-byte check so that adjacent
        // ranges compose.
        if self
            .valid
            .iter()
            .any(|(s, l)| addr >= *s && end <= s.wrapping_add(*l))
        {
            return true;
        }
        (0..len).all(|i| {
            let a = addr + i;
            self.valid
                .iter()
                .any(|(s, l)| a >= *s && a < s.wrapping_add(*l))
        })
    }

    /// The valid address ranges, as `(start, len)` pairs.
    pub fn valid_ranges(&self) -> &[(u64, u64)] {
        &self.valid
    }

    /// Set a single byte (also marks it valid).
    pub fn poke(&mut self, addr: u64, value: u8) {
        self.mark_valid(addr, 1);
        self.bytes.insert(addr, value);
    }

    /// Read a single byte. Unwritten valid bytes read as zero.
    pub fn peek(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    /// Write `len` bytes of `value` little-endian at `addr`, marking them
    /// valid. Intended for test-case setup; sandboxed execution goes
    /// through [`Memory::store`].
    pub fn poke_wide(&mut self, addr: u64, value: u64, len: u64) {
        for i in 0..len {
            self.poke(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Read `len <= 8` bytes little-endian without a validity check.
    pub fn peek_wide(&self, addr: u64, len: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..len {
            v |= u64::from(self.peek(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Sandboxed load of `len <= 8` bytes. Returns `None` (a fault) if any
    /// byte is outside the sandbox.
    pub fn load(&self, addr: u64, len: u64) -> Option<u64> {
        if !self.is_valid(addr, len) {
            return None;
        }
        Some(self.peek_wide(addr, len))
    }

    /// Sandboxed store of `len <= 8` bytes. Returns `false` (a fault) if
    /// any byte is outside the sandbox; the store is discarded.
    pub fn store(&mut self, addr: u64, value: u64, len: u64) -> bool {
        if !self.is_valid(addr, len) {
            return false;
        }
        for i in 0..len {
            self.bytes
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
        true
    }

    /// Sandboxed 128-bit load.
    pub fn load128(&self, addr: u64) -> Option<XmmValue> {
        if !self.is_valid(addr, 16) {
            return None;
        }
        Some([
            self.peek_wide(addr, 8),
            self.peek_wide(addr.wrapping_add(8), 8),
        ])
    }

    /// Sandboxed 128-bit store.
    pub fn store128(&mut self, addr: u64, value: XmmValue) -> bool {
        if !self.is_valid(addr, 16) {
            return false;
        }
        self.store(addr, value[0], 8);
        self.store(addr.wrapping_add(8), value[1], 8);
        true
    }

    /// Iterate over all written (address, byte) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.bytes.iter().map(|(a, b)| (*a, *b))
    }
}

/// A complete machine state: the object test cases are made of and the
/// object the cost function compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    gprs: [u64; 16],
    xmms: [XmmValue; 16],
    flags: [bool; 5],
    gpr_defined: [bool; 16],
    xmm_defined: [bool; 16],
    flag_defined: [bool; 5],
    /// The sandboxed memory image.
    pub memory: Memory,
}

impl Default for MachineState {
    fn default() -> Self {
        MachineState::new()
    }
}

impl MachineState {
    /// A machine state with all registers zero and *undefined*, and an
    /// empty memory image.
    pub fn new() -> MachineState {
        MachineState {
            gprs: [0; 16],
            xmms: [[0, 0]; 16],
            flags: [false; 5],
            gpr_defined: [false; 16],
            xmm_defined: [false; 16],
            flag_defined: [false; 5],
            memory: Memory::new(),
        }
    }

    /// Read a register view (the value is masked to the view's width).
    pub fn read_reg(&self, r: Reg) -> u64 {
        r.width().truncate(self.gprs[r.parent().index()])
    }

    /// Read the full 64-bit value of an architectural register.
    pub fn read_gpr64(&self, g: Gpr) -> u64 {
        self.gprs[g.index()]
    }

    /// Write a register view with x86-64 merge semantics: 64-bit writes
    /// replace the register, 32-bit writes zero the upper half, 16- and
    /// 8-bit writes preserve the untouched bits. Marks the register
    /// defined.
    pub fn write_reg(&mut self, r: Reg, value: u64) {
        let idx = r.parent().index();
        let old = self.gprs[idx];
        self.gprs[idx] = match r.width() {
            Width::Q => value,
            Width::L => value & 0xffff_ffff,
            Width::W => (old & !0xffff) | (value & 0xffff),
            Width::B => (old & !0xff) | (value & 0xff),
        };
        self.gpr_defined[idx] = true;
    }

    /// Overwrite the full 64-bit value of a register and mark it defined.
    pub fn set_gpr64(&mut self, g: Gpr, value: u64) {
        self.gprs[g.index()] = value;
        self.gpr_defined[g.index()] = true;
    }

    /// Whether a register has been defined (written, or set as a live
    /// input of the test case).
    pub fn gpr_is_defined(&self, g: Gpr) -> bool {
        self.gpr_defined[g.index()]
    }

    /// Read an SSE register.
    pub fn read_xmm(&self, x: Xmm) -> XmmValue {
        self.xmms[x.index()]
    }

    /// Write an SSE register and mark it defined.
    pub fn write_xmm(&mut self, x: Xmm, value: XmmValue) {
        self.xmms[x.index()] = value;
        self.xmm_defined[x.index()] = true;
    }

    /// Whether an SSE register has been defined.
    pub fn xmm_is_defined(&self, x: Xmm) -> bool {
        self.xmm_defined[x.index()]
    }

    /// Read a status flag.
    pub fn read_flag(&self, f: Flag) -> bool {
        self.flags[f.index()]
    }

    /// Write a status flag and mark it defined.
    pub fn write_flag(&mut self, f: Flag, value: bool) {
        self.flags[f.index()] = value;
        self.flag_defined[f.index()] = true;
    }

    /// Whether a status flag has been defined.
    pub fn flag_is_defined(&self, f: Flag) -> bool {
        self.flag_defined[f.index()]
    }

    /// Mark every register and flag as undefined (used when building the
    /// initial state of a test case: only live inputs are then defined).
    pub fn clear_definedness(&mut self) {
        self.gpr_defined = [false; 16];
        self.xmm_defined = [false; 16];
        self.flag_defined = [false; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_merge_semantics() {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rax, 0x1122_3344_5566_7788);
        // 32-bit write zeroes the upper half.
        s.write_reg(Gpr::Rax.view(Width::L), 0xdead_beef);
        assert_eq!(s.read_gpr64(Gpr::Rax), 0x0000_0000_dead_beef);
        // 8-bit write preserves everything else.
        s.set_gpr64(Gpr::Rdx, 0x1122_3344_5566_7788);
        s.write_reg(Gpr::Rdx.view(Width::B), 0xff);
        assert_eq!(s.read_gpr64(Gpr::Rdx), 0x1122_3344_5566_77ff);
        // 16-bit write preserves the upper 48 bits.
        s.write_reg(Gpr::Rdx.view(Width::W), 0xaaaa);
        assert_eq!(s.read_gpr64(Gpr::Rdx), 0x1122_3344_5566_aaaa);
    }

    #[test]
    fn read_reg_masks_to_width() {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rcx, 0xffff_ffff_ffff_ffff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::B)), 0xff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::L)), 0xffff_ffff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::Q)), u64::MAX);
    }

    #[test]
    fn definedness_tracking() {
        let mut s = MachineState::new();
        assert!(!s.gpr_is_defined(Gpr::Rdi));
        s.set_gpr64(Gpr::Rdi, 3);
        assert!(s.gpr_is_defined(Gpr::Rdi));
        assert!(!s.flag_is_defined(Flag::Cf));
        s.write_flag(Flag::Cf, true);
        assert!(s.flag_is_defined(Flag::Cf));
        s.clear_definedness();
        assert!(!s.gpr_is_defined(Gpr::Rdi));
    }

    #[test]
    fn memory_sandbox_rules() {
        let mut m = Memory::new();
        m.poke_wide(0x1000, 0x0807_0605_0403_0201, 8);
        assert_eq!(m.load(0x1000, 4), Some(0x0403_0201));
        assert_eq!(m.load(0x1004, 4), Some(0x0807_0605));
        // Out-of-sandbox accesses fault.
        assert_eq!(m.load(0x2000, 4), None);
        assert!(!m.store(0x2000, 1, 4));
        // Partially valid ranges fault too.
        assert_eq!(m.load(0x0ffd, 8), None);
        // Stores inside the sandbox succeed.
        assert!(m.store(0x1000, 0xffff_ffff, 4));
        assert_eq!(m.load(0x1000, 8), Some(0x0807_0605_ffff_ffff));
    }

    #[test]
    fn memory_128_bit_access() {
        let mut m = Memory::new();
        m.mark_valid(0x100, 16);
        assert!(m.store128(0x100, [1, 2]));
        assert_eq!(m.load128(0x100), Some([1, 2]));
        assert_eq!(
            m.load128(0x101),
            None,
            "last byte falls outside the sandbox"
        );
    }

    #[test]
    fn unwritten_valid_memory_reads_zero() {
        let mut m = Memory::new();
        m.mark_valid(0x100, 8);
        assert_eq!(m.load(0x100, 8), Some(0));
    }
}
