//! Concrete machine state: general purpose registers, SSE registers,
//! status flags, defined-ness tracking and the sandboxed memory image.

use std::collections::BTreeMap;
use stoke_x86::{Flag, Gpr, Reg, Width, Xmm};

/// A 128-bit SSE register value, stored as (low, high) 64-bit halves.
pub type XmmValue = [u64; 2];

/// One contiguous dereferenceable region: dense byte storage plus a
/// written-bitset (one bit per byte) distinguishing stored bytes from
/// unwritten ones, which read as zero but are absent from [`Memory::iter`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Segment {
    start: u64,
    data: Vec<u8>,
    /// Bitset over `data`: bit `i` set means byte `i` has been written.
    written: Vec<u64>,
}

impl Segment {
    fn end(&self) -> u64 {
        self.start + self.data.len() as u64
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    fn get(&self, i: usize) -> Option<u8> {
        if self.written[i / 64] & (1u64 << (i % 64)) != 0 {
            Some(self.data[i])
        } else {
            None
        }
    }

    fn set(&mut self, i: usize, value: u8) {
        self.data[i] = value;
        self.written[i / 64] |= 1u64 << (i % 64);
    }

    /// Read `len <= 8` bytes little-endian starting at byte index `i`
    /// (the span must be in bounds). Unwritten bytes hold zero in `data`
    /// by construction, so no written-bit masking is needed.
    fn get_wide(&self, i: usize, len: usize) -> u64 {
        if len == 8 {
            return u64::from_le_bytes(self.data[i..i + 8].try_into().expect("8-byte span"));
        }
        let mut v = 0u64;
        for (k, b) in self.data[i..i + len].iter().enumerate() {
            v |= u64::from(*b) << (8 * k);
        }
        v
    }

    /// Write `len <= 8` bytes little-endian at byte index `i` (the span
    /// must be in bounds), setting the written bits word-wise — the span
    /// covers at most two bitset words.
    fn set_wide(&mut self, i: usize, value: u64, len: usize) {
        if len == 8 {
            self.data[i..i + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            for (k, b) in self.data[i..i + len].iter_mut().enumerate() {
                *b = (value >> (8 * k)) as u8;
            }
        }
        let bits = (1u64 << len) - 1;
        let (word, off) = (i / 64, i % 64);
        self.written[word] |= bits << off;
        let spill = (off + len).saturating_sub(64);
        if spill > 0 {
            self.written[word + 1] |= bits >> (len - spill);
        }
    }
}

/// The sandboxed memory image of a machine state.
///
/// Following §5.1 of the paper, "the set of addresses dereferenced by the
/// target are used to define the sandbox in which candidate rewrites are
/// executed": reads and writes of addresses outside the valid ranges are
/// trapped, counted as segmentation faults, and replaced by a constant
/// zero value (reads) or discarded (writes).
///
/// Valid ranges are stored as dense, sorted, non-overlapping segments
/// (sandboxes are a handful of small buffers — a stack page and the
/// target's dereferenced regions), so the evaluation hot path gets
/// branch-predictable bounds checks and direct byte indexing instead of
/// per-byte tree lookups, clones are flat `memcpy`s, and the batched
/// backend's scratch reload reuses allocations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Memory {
    /// Dense storage for every non-wrapping valid range, sorted by start
    /// address, merged when ranges touch or overlap.
    segs: Vec<Segment>,
    /// Bytes poked at addresses no segment covers. Only reachable through
    /// the pathological `poke(u64::MAX)` (whose one-byte validity range
    /// wraps and therefore, exactly as in the sandbox rules, validates
    /// nothing) — kept so `peek`/`iter` semantics stay identical.
    orphans: BTreeMap<u64, u8>,
    /// The raw `(start, len)` pairs passed to [`Memory::mark_valid`], in
    /// call order, for [`Memory::valid_ranges`].
    valid: Vec<(u64, u64)>,
}

impl Memory {
    /// An empty memory image with no valid addresses.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// The index of the segment containing `addr`, if any.
    fn find_seg(&self, addr: u64) -> Option<usize> {
        let i = self.segs.partition_point(|s| s.start <= addr);
        (i > 0 && self.segs[i - 1].contains(addr)).then(|| i - 1)
    }

    /// Ensure dense storage covers `[start, end)`, merging with any
    /// overlapping or adjacent segments (so contiguous ranges compose into
    /// one segment and a whole valid access always lies in a single one).
    fn cover(&mut self, start: u64, end: u64) {
        let lo = self.segs.partition_point(|s| s.end() < start);
        let mut hi = lo;
        while hi < self.segs.len() && self.segs[hi].start <= end {
            hi += 1;
        }
        let new_start = self.segs.get(lo).map_or(start, |s| s.start.min(start));
        let new_end = (lo..hi).fold(end, |e, i| e.max(self.segs[i].end()));
        if lo < hi && self.segs[lo].start == new_start && self.segs[lo].end() == new_end {
            return; // Already covered by one segment.
        }
        let len = (new_end - new_start) as usize;
        let mut merged = Segment {
            start: new_start,
            data: vec![0; len],
            written: vec![0; len.div_ceil(64)],
        };
        for seg in &self.segs[lo..hi] {
            let off = (seg.start - new_start) as usize;
            merged.data[off..off + seg.data.len()].copy_from_slice(&seg.data);
            for (i, word) in seg.written.iter().enumerate() {
                let mut word = *word;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let j = off + i * 64 + bit;
                    merged.written[j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        self.segs.splice(lo..hi, std::iter::once(merged));
    }

    /// Mark a contiguous byte range as legally dereferenceable.
    pub fn mark_valid(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.valid.push((addr, len));
        // A range wrapping past the end of the address space validates
        // nothing (no address can satisfy `addr <= a < addr + len`), so it
        // gets no storage either.
        if let Some(end) = addr.checked_add(len) {
            self.cover(addr, end);
        }
    }

    /// Whether every byte of `[addr, addr + len)` may be dereferenced.
    pub fn is_valid(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = match addr.checked_add(len) {
            Some(e) => e,
            None => return false,
        };
        // Touching ranges are merged at mark time, so a fully valid access
        // always lies within a single segment.
        match self.find_seg(addr) {
            Some(i) => end <= self.segs[i].end(),
            None => false,
        }
    }

    /// The valid address ranges, as `(start, len)` pairs, in the order
    /// they were marked.
    pub fn valid_ranges(&self) -> &[(u64, u64)] {
        &self.valid
    }

    /// Set a single byte (also marks it valid).
    pub fn poke(&mut self, addr: u64, value: u8) {
        self.mark_valid(addr, 1);
        match self.find_seg(addr) {
            Some(i) => {
                let seg = &mut self.segs[i];
                let j = (addr - seg.start) as usize;
                seg.set(j, value);
            }
            None => {
                self.orphans.insert(addr, value);
            }
        }
    }

    /// Read a single byte. Unwritten valid bytes read as zero.
    pub fn peek(&self, addr: u64) -> u8 {
        match self.find_seg(addr) {
            Some(i) => {
                let seg = &self.segs[i];
                seg.get((addr - seg.start) as usize).unwrap_or(0)
            }
            None => self.orphans.get(&addr).copied().unwrap_or(0),
        }
    }

    /// Write `len` bytes of `value` little-endian at `addr`, marking them
    /// valid. Intended for test-case setup; sandboxed execution goes
    /// through [`Memory::store`].
    pub fn poke_wide(&mut self, addr: u64, value: u64, len: u64) {
        for i in 0..len {
            self.poke(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Read `len <= 8` bytes little-endian without a validity check.
    pub fn peek_wide(&self, addr: u64, len: u64) -> u64 {
        // Fast path: the whole span inside one segment.
        if let Some(i) = self.find_seg(addr) {
            let seg = &self.segs[i];
            if addr.checked_add(len).is_some_and(|end| end <= seg.end()) {
                return seg.get_wide((addr - seg.start) as usize, len as usize);
            }
        }
        let mut v = 0u64;
        for i in 0..len {
            v |= u64::from(self.peek(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Sandboxed load of `len <= 8` bytes. Returns `None` (a fault) if any
    /// byte is outside the sandbox.
    pub fn load(&self, addr: u64, len: u64) -> Option<u64> {
        if len == 0 {
            return Some(0);
        }
        // A valid span always lies within a single segment (touching
        // ranges are merged at mark time), so one lookup both bounds-checks
        // the access and locates the bytes.
        let seg = &self.segs[self.find_seg(addr)?];
        if addr.checked_add(len)? > seg.end() {
            return None;
        }
        Some(seg.get_wide((addr - seg.start) as usize, len as usize))
    }

    /// Sandboxed store of `len <= 8` bytes. Returns `false` (a fault) if
    /// any byte is outside the sandbox; the store is discarded.
    pub fn store(&mut self, addr: u64, value: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(i) = self.find_seg(addr) else {
            return false;
        };
        let seg = &mut self.segs[i];
        match addr.checked_add(len) {
            Some(end) if end <= seg.end() => {
                seg.set_wide((addr - seg.start) as usize, value, len as usize);
                true
            }
            _ => false,
        }
    }

    /// Whether `other` has the identical segment layout (same starts and
    /// lengths; contents may differ). Sandboxed execution never changes a
    /// layout, so images that start out layout-equal stay that way.
    pub(crate) fn same_layout(&self, other: &Memory) -> bool {
        self.segs.len() == other.segs.len()
            && self
                .segs
                .iter()
                .zip(&other.segs)
                .all(|(a, b)| a.start == b.start && a.data.len() == b.data.len())
    }

    /// Resolve an 8-byte access at `addr` to a `(segment, byte offset)`
    /// pair, or `None` if the access faults. Because resolution depends
    /// only on the address and the segment *layout*, a resolved pair is
    /// valid for every memory image with the same layout — the batched
    /// backend resolves once per distinct address and reuses the result
    /// across columns ([`read8_at`](Memory::read8_at) /
    /// [`write8_at`](Memory::write8_at)).
    #[inline]
    pub(crate) fn resolve8(&self, addr: u64) -> Option<(u32, u32)> {
        let i = self.find_seg(addr)?;
        let seg = &self.segs[i];
        if addr.checked_add(8)? > seg.end() {
            return None;
        }
        Some((i as u32, (addr - seg.start) as u32))
    }

    /// Read 8 bytes at a location resolved by [`resolve8`](Memory::resolve8)
    /// against an identically-laid-out image.
    #[inline]
    pub(crate) fn read8_at(&self, si: u32, j: u32) -> u64 {
        let j = j as usize;
        u64::from_le_bytes(
            self.segs[si as usize].data[j..j + 8]
                .try_into()
                .expect("8-byte span"),
        )
    }

    /// Write 8 bytes at a location resolved by [`resolve8`](Memory::resolve8)
    /// against an identically-laid-out image.
    #[inline]
    pub(crate) fn write8_at(&mut self, si: u32, j: u32, value: u64) {
        self.segs[si as usize].set_wide(j as usize, value, 8);
    }

    /// Copy the bytes and written bits of the address range `[lo, hi)`
    /// from `other` into `self`. Both images must have identical segment
    /// layout (the batched backend's scratch reload calls this on a copy
    /// of `other` whose only divergence is sandboxed stores, which never
    /// change the layout). Orphan bytes are untouched — no store can
    /// reach them.
    pub(crate) fn copy_range_from(&mut self, other: &Memory, lo: u64, hi: u64) {
        debug_assert_eq!(self.segs.len(), other.segs.len(), "layouts must match");
        for (seg, oseg) in self.segs.iter_mut().zip(&other.segs) {
            debug_assert_eq!(seg.start, oseg.start, "layouts must match");
            debug_assert_eq!(seg.data.len(), oseg.data.len(), "layouts must match");
            let a = lo.clamp(seg.start, seg.end());
            let b = hi.clamp(seg.start, seg.end());
            if a >= b {
                continue;
            }
            let (i, j) = ((a - seg.start) as usize, (b - seg.start) as usize);
            seg.data[i..j].copy_from_slice(&oseg.data[i..j]);
            // Splice the written bits of [i, j): whole words in the middle,
            // masked edges.
            for w in i / 64..=(j - 1) / 64 {
                let lo_bit = if w == i / 64 { i % 64 } else { 0 };
                let hi_bit = if w == (j - 1) / 64 {
                    (j - 1) % 64 + 1
                } else {
                    64
                };
                let mask = if hi_bit - lo_bit == 64 {
                    u64::MAX
                } else {
                    ((1u64 << (hi_bit - lo_bit)) - 1) << lo_bit
                };
                seg.written[w] = (seg.written[w] & !mask) | (oseg.written[w] & mask);
            }
        }
    }

    /// Sandboxed 128-bit load.
    pub fn load128(&self, addr: u64) -> Option<XmmValue> {
        if !self.is_valid(addr, 16) {
            return None;
        }
        Some([
            self.peek_wide(addr, 8),
            self.peek_wide(addr.wrapping_add(8), 8),
        ])
    }

    /// Sandboxed 128-bit store.
    pub fn store128(&mut self, addr: u64, value: XmmValue) -> bool {
        if !self.is_valid(addr, 16) {
            return false;
        }
        self.store(addr, value[0], 8);
        self.store(addr.wrapping_add(8), value[1], 8);
        true
    }

    /// Iterate over all written (address, byte) pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        // Segments are sorted and disjoint, and orphan addresses (only
        // reachable past the end of the address space) can never fall
        // inside a segment, so a two-stream merge stays address-ordered.
        let mut from_segs = self
            .segs
            .iter()
            .flat_map(|s| {
                // Walk set bits of the written-bitset so sparsely-written
                // segments cost one check per 64 bytes, not one per byte.
                s.written.iter().enumerate().flat_map(move |(w, word)| {
                    let mut word = *word;
                    std::iter::from_fn(move || {
                        if word == 0 {
                            return None;
                        }
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        let i = w * 64 + bit;
                        Some((s.start + i as u64, s.data[i]))
                    })
                })
            })
            .peekable();
        let mut from_orphans = self.orphans.iter().map(|(a, b)| (*a, *b)).peekable();
        std::iter::from_fn(move || match (from_segs.peek(), from_orphans.peek()) {
            (Some(a), Some(b)) if a.0 <= b.0 => from_segs.next(),
            (Some(_), Some(_)) => from_orphans.next(),
            (Some(_), None) => from_segs.next(),
            (None, _) => from_orphans.next(),
        })
    }

    /// The number of differing bits between the byte images of `self` and
    /// `other`, skipping addresses inside `exclude = (start, len)`, where
    /// a byte neither image wrote reads as zero — i.e. the Hamming
    /// distance the cost function's memory term (Equation 8) sums
    /// byte-by-byte.
    ///
    /// Returns `None` unless both images have the identical sandbox
    /// layout; two states produced by executing (any) programs against
    /// the same test-case input always do, since sandboxed execution
    /// never changes the layout. In that case the per-address comparison
    /// collapses to a word-wide XOR-popcount over the dense segment
    /// arrays (unwritten bytes hold zero by construction), which is what
    /// makes the memory term cheap enough for the evaluation hot path.
    pub fn diff_bits(&self, other: &Memory, exclude: Option<(u64, u64)>) -> Option<u64> {
        if self.segs.len() != other.segs.len()
            || self
                .segs
                .iter()
                .zip(&other.segs)
                .any(|(a, b)| a.start != b.start || a.data.len() != b.data.len())
            || self.orphans != other.orphans
        {
            return None;
        }
        fn xor_popcount(a: &[u8], b: &[u8]) -> u64 {
            let mut wa = a.chunks_exact(8);
            let mut wb = b.chunks_exact(8);
            let mut total: u64 = wa
                .by_ref()
                .zip(wb.by_ref())
                .map(|(x, y)| {
                    let x = u64::from_le_bytes(x.try_into().expect("8-byte chunk"));
                    let y = u64::from_le_bytes(y.try_into().expect("8-byte chunk"));
                    u64::from((x ^ y).count_ones())
                })
                .sum();
            total += wa
                .remainder()
                .iter()
                .zip(wb.remainder())
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>();
            total
        }
        let mut total = 0u64;
        for (a, b) in self.segs.iter().zip(&other.segs) {
            // Clamp the excluded address range to in-segment byte indices.
            let (x0, x1) = match exclude {
                Some((start, len)) => {
                    let lo = start.clamp(a.start, a.end());
                    let hi = start.saturating_add(len).clamp(a.start, a.end());
                    ((lo - a.start) as usize, (hi - a.start) as usize)
                }
                None => (0, 0),
            };
            total += xor_popcount(&a.data[..x0], &b.data[..x0]);
            total += xor_popcount(&a.data[x1.max(x0)..], &b.data[x1.max(x0)..]);
        }
        Some(total)
    }

    /// Replace this image with a copy of `other`, reusing the existing
    /// allocations where possible (the batched backend reloads one scratch
    /// image per test-case column on every evaluation, and sandbox layouts
    /// are identical across reloads, so the per-segment `clone_from`s
    /// reduce to flat copies with no allocator traffic).
    pub(crate) fn copy_from(&mut self, other: &Memory) {
        self.segs.truncate(other.segs.len());
        for (dst, src) in self.segs.iter_mut().zip(&other.segs) {
            dst.start = src.start;
            dst.data.clone_from(&src.data);
            dst.written.clone_from(&src.written);
        }
        for src in &other.segs[self.segs.len()..] {
            self.segs.push(src.clone());
        }
        self.orphans.clone_from(&other.orphans);
        self.valid.clone_from(&other.valid);
    }
}

/// The x86-64 register merge rule shared by [`MachineState::write_reg`]
/// and the batched backend's column writes: 64-bit writes replace the
/// register, 32-bit writes zero the upper half, 16- and 8-bit writes
/// preserve the untouched bits.
pub(crate) fn merge_reg_write(old: u64, width: Width, value: u64) -> u64 {
    match width {
        Width::Q => value,
        Width::L => value & 0xffff_ffff,
        Width::W => (old & !0xffff) | (value & 0xffff),
        Width::B => (old & !0xff) | (value & 0xff),
    }
}

/// A complete machine state: the object test cases are made of and the
/// object the cost function compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    // Crate-visible so the batched backend (`crate::batch`) can scatter
    // and gather whole states column-wise without going through the
    // per-register accessors; external code uses the accessors below.
    pub(crate) gprs: [u64; 16],
    pub(crate) xmms: [XmmValue; 16],
    pub(crate) flags: [bool; 5],
    pub(crate) gpr_defined: [bool; 16],
    pub(crate) xmm_defined: [bool; 16],
    pub(crate) flag_defined: [bool; 5],
    /// The sandboxed memory image.
    pub memory: Memory,
}

impl Default for MachineState {
    fn default() -> Self {
        MachineState::new()
    }
}

impl MachineState {
    /// A machine state with all registers zero and *undefined*, and an
    /// empty memory image.
    pub fn new() -> MachineState {
        MachineState {
            gprs: [0; 16],
            xmms: [[0, 0]; 16],
            flags: [false; 5],
            gpr_defined: [false; 16],
            xmm_defined: [false; 16],
            flag_defined: [false; 5],
            memory: Memory::new(),
        }
    }

    /// Read a register view (the value is masked to the view's width).
    pub fn read_reg(&self, r: Reg) -> u64 {
        r.width().truncate(self.gprs[r.parent().index()])
    }

    /// Read the full 64-bit value of an architectural register.
    pub fn read_gpr64(&self, g: Gpr) -> u64 {
        self.gprs[g.index()]
    }

    /// Write a register view with x86-64 merge semantics: 64-bit writes
    /// replace the register, 32-bit writes zero the upper half, 16- and
    /// 8-bit writes preserve the untouched bits. Marks the register
    /// defined.
    pub fn write_reg(&mut self, r: Reg, value: u64) {
        let idx = r.parent().index();
        self.gprs[idx] = merge_reg_write(self.gprs[idx], r.width(), value);
        self.gpr_defined[idx] = true;
    }

    /// Overwrite the full 64-bit value of a register and mark it defined.
    pub fn set_gpr64(&mut self, g: Gpr, value: u64) {
        self.gprs[g.index()] = value;
        self.gpr_defined[g.index()] = true;
    }

    /// Whether a register has been defined (written, or set as a live
    /// input of the test case).
    pub fn gpr_is_defined(&self, g: Gpr) -> bool {
        self.gpr_defined[g.index()]
    }

    /// Read an SSE register.
    pub fn read_xmm(&self, x: Xmm) -> XmmValue {
        self.xmms[x.index()]
    }

    /// Write an SSE register and mark it defined.
    pub fn write_xmm(&mut self, x: Xmm, value: XmmValue) {
        self.xmms[x.index()] = value;
        self.xmm_defined[x.index()] = true;
    }

    /// Whether an SSE register has been defined.
    pub fn xmm_is_defined(&self, x: Xmm) -> bool {
        self.xmm_defined[x.index()]
    }

    /// Read a status flag.
    pub fn read_flag(&self, f: Flag) -> bool {
        self.flags[f.index()]
    }

    /// Write a status flag and mark it defined.
    pub fn write_flag(&mut self, f: Flag, value: bool) {
        self.flags[f.index()] = value;
        self.flag_defined[f.index()] = true;
    }

    /// Whether a status flag has been defined.
    pub fn flag_is_defined(&self, f: Flag) -> bool {
        self.flag_defined[f.index()]
    }

    /// Mark every register and flag as undefined (used when building the
    /// initial state of a test case: only live inputs are then defined).
    pub fn clear_definedness(&mut self) {
        self.gpr_defined = [false; 16];
        self.xmm_defined = [false; 16];
        self.flag_defined = [false; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_merge_semantics() {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rax, 0x1122_3344_5566_7788);
        // 32-bit write zeroes the upper half.
        s.write_reg(Gpr::Rax.view(Width::L), 0xdead_beef);
        assert_eq!(s.read_gpr64(Gpr::Rax), 0x0000_0000_dead_beef);
        // 8-bit write preserves everything else.
        s.set_gpr64(Gpr::Rdx, 0x1122_3344_5566_7788);
        s.write_reg(Gpr::Rdx.view(Width::B), 0xff);
        assert_eq!(s.read_gpr64(Gpr::Rdx), 0x1122_3344_5566_77ff);
        // 16-bit write preserves the upper 48 bits.
        s.write_reg(Gpr::Rdx.view(Width::W), 0xaaaa);
        assert_eq!(s.read_gpr64(Gpr::Rdx), 0x1122_3344_5566_aaaa);
    }

    #[test]
    fn read_reg_masks_to_width() {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rcx, 0xffff_ffff_ffff_ffff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::B)), 0xff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::L)), 0xffff_ffff);
        assert_eq!(s.read_reg(Gpr::Rcx.view(Width::Q)), u64::MAX);
    }

    #[test]
    fn definedness_tracking() {
        let mut s = MachineState::new();
        assert!(!s.gpr_is_defined(Gpr::Rdi));
        s.set_gpr64(Gpr::Rdi, 3);
        assert!(s.gpr_is_defined(Gpr::Rdi));
        assert!(!s.flag_is_defined(Flag::Cf));
        s.write_flag(Flag::Cf, true);
        assert!(s.flag_is_defined(Flag::Cf));
        s.clear_definedness();
        assert!(!s.gpr_is_defined(Gpr::Rdi));
    }

    #[test]
    fn memory_sandbox_rules() {
        let mut m = Memory::new();
        m.poke_wide(0x1000, 0x0807_0605_0403_0201, 8);
        assert_eq!(m.load(0x1000, 4), Some(0x0403_0201));
        assert_eq!(m.load(0x1004, 4), Some(0x0807_0605));
        // Out-of-sandbox accesses fault.
        assert_eq!(m.load(0x2000, 4), None);
        assert!(!m.store(0x2000, 1, 4));
        // Partially valid ranges fault too.
        assert_eq!(m.load(0x0ffd, 8), None);
        // Stores inside the sandbox succeed.
        assert!(m.store(0x1000, 0xffff_ffff, 4));
        assert_eq!(m.load(0x1000, 8), Some(0x0807_0605_ffff_ffff));
    }

    #[test]
    fn memory_128_bit_access() {
        let mut m = Memory::new();
        m.mark_valid(0x100, 16);
        assert!(m.store128(0x100, [1, 2]));
        assert_eq!(m.load128(0x100), Some([1, 2]));
        assert_eq!(
            m.load128(0x101),
            None,
            "last byte falls outside the sandbox"
        );
    }

    #[test]
    fn unwritten_valid_memory_reads_zero() {
        let mut m = Memory::new();
        m.mark_valid(0x100, 8);
        assert_eq!(m.load(0x100, 8), Some(0));
    }
}
