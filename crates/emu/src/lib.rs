//! # stoke-emu
//!
//! The concrete execution substrate of the STOKE reproduction: a
//! sandboxed interpreter for the modelled x86-64 subset (the paper's
//! "hardware emulator", §4.1), fault counters feeding the `err(·)` cost
//! term, and a dependency-aware timing model standing in for native
//! benchmarking (§4.2 / Figure 3).
//!
//! ```
//! use stoke_emu::{run, state::MachineState};
//! use stoke_x86::{Gpr, Program};
//!
//! // p23: population count, the "typical superoptimizer rewrite".
//! let p: Program = "popcntq rdi, rax".parse().unwrap();
//! let mut input = MachineState::new();
//! input.set_gpr64(Gpr::Rdi, 0b1011_0111);
//! assert_eq!(run(&p, &input).state.read_gpr64(Gpr::Rax), 6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod exec;
pub mod prepare;
pub mod state;
pub mod taint;
pub mod timing;

pub use batch::{BatchState, BatchedProgram, ColumnRef, PrefixCheckpoints};
pub use exec::{run, run_instr_refs, run_instrs, Faults, Outcome};
pub use prepare::{PreparedMeta, PreparedProgram};
pub use state::{MachineState, Memory, XmmValue};
pub use taint::{run_tainted, TaintState};
pub use timing::{estimate_cycles, TimingModel};
