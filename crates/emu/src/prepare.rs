//! The decode-once / execute-many evaluation backend.
//!
//! The MCMC inner loop evaluates one candidate rewrite on *every* test
//! case of a suite, and the interpreter ([`run_instrs`](crate::run_instrs))
//! repeats per-instruction work on each case that does not depend on the
//! machine state at all — most importantly the def/use analysis behind the
//! undefined-read fault counter of Equation 11, which allocates fresh use
//! lists on every step. [`PreparedProgram`] hoists that work out of the
//! per-case loop: an instruction sequence is decoded once (typically once
//! per MCMC proposal) into a dense, pre-resolved form, and
//! [`run_prepared`](PreparedProgram::run_prepared) then executes it across
//! all test cases.
//!
//! Execution semantics are shared with the interpreter — both paths drive
//! the same sandboxed step function — so the two backends cannot drift
//! apart; `run_prepared` is bit-identical to `run_instrs` by construction
//! (and by the randomized property test `prop_prepared` at the workspace
//! root).

use crate::exec::{Cpu, Emulator, Outcome};
use crate::state::MachineState;
use stoke_x86::{Flag, Instruction, Program, Reg, Xmm};

/// Per-instruction half-open ranges into the flattened use lists of a
/// [`PreparedProgram`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct UseSpans {
    pub(crate) gpr: (u32, u32),
    pub(crate) xmm: (u32, u32),
    pub(crate) flag: (u32, u32),
}

/// An instruction sequence decoded once into a dense, pre-resolved form
/// that can be executed many times.
///
/// Preparation drops any notion of `UNUSED` slots (callers pass only the
/// live instructions), precomputes every instruction's register/flag use
/// sets for the undefined-read counter, and caches the static latency
/// `H(R)` of Equation 13.
///
/// ```
/// use stoke_emu::{run_instrs, PreparedProgram};
/// use stoke_emu::state::MachineState;
/// use stoke_x86::{Gpr, Program};
///
/// let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
/// let prepared = PreparedProgram::of_program(&p);
/// let mut input = MachineState::new();
/// input.set_gpr64(Gpr::Rdi, 2);
/// input.set_gpr64(Gpr::Rsi, 40);
/// // One prepare, many runs — each bit-identical to the interpreter.
/// for _ in 0..3 {
///     let out = prepared.run_prepared(&input);
///     assert_eq!(out.state, run_instrs(p.instrs(), &input).state);
///     assert_eq!(out.state.read_gpr64(Gpr::Rax), 42);
/// }
/// assert_eq!(prepared.static_latency(), p.static_latency());
/// ```
#[derive(Debug, Clone)]
pub struct PreparedProgram<'a> {
    // Crate-visible so the batched backend (`crate::batch`) can reuse the
    // decoded form — instruction list, flattened use lists and spans —
    // without re-deriving it per proposal.
    pub(crate) instrs: Vec<&'a Instruction>,
    pub(crate) gpr_uses: Vec<Reg>,
    pub(crate) xmm_uses: Vec<Xmm>,
    pub(crate) flag_uses: Vec<Flag>,
    pub(crate) spans: Vec<UseSpans>,
    latency: u64,
}

impl<'a> PreparedProgram<'a> {
    /// Prepare a sequence of instructions (borrowed; preparation performs
    /// the per-proposal decode so that per-test-case execution does no
    /// analysis work and no allocation beyond the machine state itself).
    pub fn new(instrs: impl IntoIterator<Item = &'a Instruction>) -> PreparedProgram<'a> {
        let instrs: Vec<&'a Instruction> = instrs.into_iter().collect();
        let mut prepared = PreparedProgram {
            gpr_uses: Vec::new(),
            xmm_uses: Vec::new(),
            flag_uses: Vec::new(),
            spans: Vec::with_capacity(instrs.len()),
            latency: 0,
            instrs,
        };
        for instr in &prepared.instrs {
            let gpr_start = prepared.gpr_uses.len() as u32;
            instr.gpr_uses_into(&mut prepared.gpr_uses);
            let xmm_start = prepared.xmm_uses.len() as u32;
            instr.xmm_uses_into(&mut prepared.xmm_uses);
            let flag_start = prepared.flag_uses.len() as u32;
            prepared.flag_uses.extend(instr.flag_uses());
            prepared.spans.push(UseSpans {
                gpr: (gpr_start, prepared.gpr_uses.len() as u32),
                xmm: (xmm_start, prepared.xmm_uses.len() as u32),
                flag: (flag_start, prepared.flag_uses.len() as u32),
            });
            prepared.latency += u64::from(instr.latency());
        }
        prepared
    }

    /// Prepare a whole [`Program`].
    pub fn of_program(program: &'a Program) -> PreparedProgram<'a> {
        PreparedProgram::new(program.iter())
    }

    /// Prepare `instrs`, reusing the decoded metadata of a previously
    /// [stored](PreparedMeta::store) program for every instruction of the
    /// longest common prefix and suffix. MCMC proposals differ from the
    /// committed rewrite in at most two slots, so this replaces the O(ℓ)
    /// per-proposal use-set derivation with two `memcpy`s plus decoding of
    /// the (typically one-instruction) middle.
    ///
    /// The common affix is found by comparing instructions, not trusted
    /// from a hint, so the result is identical to
    /// [`new`](PreparedProgram::new) for *any* input — an empty or
    /// unrelated `meta` merely decodes everything afresh.
    pub fn new_diffed(
        instrs: impl IntoIterator<Item = &'a Instruction>,
        meta: &PreparedMeta,
    ) -> PreparedProgram<'a> {
        let instrs: Vec<&'a Instruction> = instrs.into_iter().collect();
        let (new_len, old_len) = (instrs.len(), meta.instrs.len());
        let max = new_len.min(old_len);
        let mut prefix = 0;
        while prefix < max && *instrs[prefix] == meta.instrs[prefix] {
            prefix += 1;
        }
        let mut suffix = 0;
        while suffix < max - prefix
            && *instrs[new_len - 1 - suffix] == meta.instrs[old_len - 1 - suffix]
        {
            suffix += 1;
        }
        // Prefix: the stored flat use lists and spans are bytewise what
        // `new` would derive.
        let pend = if prefix == 0 {
            UseSpans::default()
        } else {
            meta.spans[prefix - 1]
        };
        let mut prepared = PreparedProgram {
            gpr_uses: meta.gpr_uses[..pend.gpr.1 as usize].to_vec(),
            xmm_uses: meta.xmm_uses[..pend.xmm.1 as usize].to_vec(),
            flag_uses: meta.flag_uses[..pend.flag.1 as usize].to_vec(),
            spans: meta.spans[..prefix].to_vec(),
            latency: meta.lat[..prefix].iter().map(|&l| u64::from(l)).sum(),
            instrs,
        };
        // Middle: decode exactly as `new` does.
        for i in prefix..new_len - suffix {
            let instr = prepared.instrs[i];
            let gpr_start = prepared.gpr_uses.len() as u32;
            instr.gpr_uses_into(&mut prepared.gpr_uses);
            let xmm_start = prepared.xmm_uses.len() as u32;
            instr.xmm_uses_into(&mut prepared.xmm_uses);
            let flag_start = prepared.flag_uses.len() as u32;
            prepared.flag_uses.extend(instr.flag_uses());
            prepared.spans.push(UseSpans {
                gpr: (gpr_start, prepared.gpr_uses.len() as u32),
                xmm: (xmm_start, prepared.xmm_uses.len() as u32),
                flag: (flag_start, prepared.flag_uses.len() as u32),
            });
            prepared.latency += u64::from(instr.latency());
        }
        // Suffix: the stored flat use lists again, with every span rebased
        // onto this program's offsets.
        if suffix > 0 {
            let s0 = old_len - suffix;
            let start = meta.spans[s0];
            // Per-list offset deltas; negative (a shrinking edit) is fine,
            // the wrapping add below round-trips through two's complement.
            let base = (
                (prepared.gpr_uses.len() as u32).wrapping_sub(start.gpr.0),
                (prepared.xmm_uses.len() as u32).wrapping_sub(start.xmm.0),
                (prepared.flag_uses.len() as u32).wrapping_sub(start.flag.0),
            );
            prepared
                .gpr_uses
                .extend_from_slice(&meta.gpr_uses[start.gpr.0 as usize..]);
            prepared
                .xmm_uses
                .extend_from_slice(&meta.xmm_uses[start.xmm.0 as usize..]);
            prepared
                .flag_uses
                .extend_from_slice(&meta.flag_uses[start.flag.0 as usize..]);
            for s in &meta.spans[s0..] {
                prepared.spans.push(UseSpans {
                    gpr: (s.gpr.0.wrapping_add(base.0), s.gpr.1.wrapping_add(base.0)),
                    xmm: (s.xmm.0.wrapping_add(base.1), s.xmm.1.wrapping_add(base.1)),
                    flag: (s.flag.0.wrapping_add(base.2), s.flag.1.wrapping_add(base.2)),
                });
            }
            prepared.latency += meta.lat[s0..].iter().map(|&l| u64::from(l)).sum::<u64>();
        }
        #[cfg(debug_assertions)]
        {
            let full = PreparedProgram::new(prepared.instrs.iter().copied());
            debug_assert_eq!(prepared.gpr_uses, full.gpr_uses);
            debug_assert_eq!(prepared.xmm_uses, full.xmm_uses);
            debug_assert_eq!(prepared.flag_uses, full.flag_uses);
            debug_assert_eq!(prepared.latency, full.latency);
            debug_assert!(prepared
                .spans
                .iter()
                .zip(&full.spans)
                .all(|(a, b)| a.gpr == b.gpr && a.xmm == b.xmm && a.flag == b.flag));
        }
        prepared
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the prepared sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The prepared instructions, in execution order.
    pub fn instructions(&self) -> impl Iterator<Item = &'a Instruction> + '_ {
        self.instrs.iter().copied()
    }

    /// The cached static latency `H(R)` (Equation 13): the sum of every
    /// instruction's latency, including memory-access penalties.
    pub fn static_latency(&self) -> u64 {
        self.latency
    }

    /// The precomputed register uses of instruction `index` (same elements
    /// and order as [`Instruction::gpr_uses`]). Static analyses can read
    /// these instead of re-deriving use sets per proposal.
    pub fn gpr_uses_of(&self, index: usize) -> &[Reg] {
        let span = self.spans[index].gpr;
        &self.gpr_uses[span.0 as usize..span.1 as usize]
    }

    /// The precomputed xmm uses of instruction `index`.
    pub fn xmm_uses_of(&self, index: usize) -> &[Xmm] {
        let span = self.spans[index].xmm;
        &self.xmm_uses[span.0 as usize..span.1 as usize]
    }

    /// The precomputed flag uses of instruction `index`.
    pub fn flag_uses_of(&self, index: usize) -> &[Flag] {
        let span = self.spans[index].flag;
        &self.flag_uses[span.0 as usize..span.1 as usize]
    }

    /// Run the prepared sequence from `input`, sandboxing all undefined
    /// behaviour exactly as [`run_instrs`](crate::run_instrs) does.
    pub fn run_prepared(&self, input: &MachineState) -> Outcome {
        let mut emu = Emulator::start(input);
        for (instr, spans) in self.instrs.iter().zip(&self.spans) {
            // The undefined-read counter of Equation 11, over the
            // precomputed use lists (same elements, same order as the
            // interpreter's per-step analysis).
            for r in &self.gpr_uses[spans.gpr.0 as usize..spans.gpr.1 as usize] {
                if !emu.state.gpr_is_defined(r.parent()) {
                    emu.faults.undef += 1;
                }
            }
            for x in &self.xmm_uses[spans.xmm.0 as usize..spans.xmm.1 as usize] {
                if !emu.state.xmm_is_defined(*x) {
                    emu.faults.undef += 1;
                }
            }
            for f in &self.flag_uses[spans.flag.0 as usize..spans.flag.1 as usize] {
                if !emu.state.flag_is_defined(*f) {
                    emu.faults.undef += 1;
                }
            }
            emu.execute(instr);
        }
        emu.finish()
    }
}

/// An owned copy of one prepared program — its instructions and decoded
/// metadata (flat use lists, spans, per-instruction latencies) — kept
/// across proposals so [`PreparedProgram::new_diffed`] can decode only the
/// instructions a proposal actually changed. The incremental backend
/// stores the committed rewrite here on every accept.
#[derive(Debug, Clone, Default)]
pub struct PreparedMeta {
    instrs: Vec<Instruction>,
    gpr_uses: Vec<Reg>,
    xmm_uses: Vec<Xmm>,
    flag_uses: Vec<Flag>,
    spans: Vec<UseSpans>,
    lat: Vec<u32>,
}

impl PreparedMeta {
    /// An empty store; [`new_diffed`](PreparedProgram::new_diffed) against
    /// it decodes everything afresh.
    pub fn new() -> PreparedMeta {
        PreparedMeta::default()
    }

    /// Overwrite this store with `prepared`'s instructions and metadata
    /// (reusing allocations).
    pub fn store(&mut self, prepared: &PreparedProgram<'_>) {
        self.instrs.clear();
        self.instrs
            .extend(prepared.instrs.iter().map(|&i| i.clone()));
        self.gpr_uses.clone_from(&prepared.gpr_uses);
        self.xmm_uses.clone_from(&prepared.xmm_uses);
        self.flag_uses.clone_from(&prepared.flag_uses);
        self.spans.clone_from(&prepared.spans);
        self.lat.clear();
        self.lat.extend(prepared.instrs.iter().map(|i| i.latency()));
    }

    /// Number of stored instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_instrs;
    use stoke_x86::Gpr;

    fn input() -> MachineState {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rdi, 7);
        s.set_gpr64(Gpr::Rsi, 35);
        s
    }

    #[test]
    fn prepared_matches_interpreter_on_clean_code() {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let a = prepared.run_prepared(&input());
        let b = run_instrs(p.instrs(), &input());
        assert_eq!(a.state, b.state);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.state.read_gpr64(Gpr::Rax), 42);
        assert_eq!(prepared.len(), 2);
        assert!(!prepared.is_empty());
    }

    #[test]
    fn prepared_counts_faults_identically() {
        // Undefined reads (rbx, flags before adc), a wild load, and a
        // divide by zero, all in one program.
        let p: Program = "addq rbx, rdi\nmovq (rbx), rcx\nxorq rdx, rdx\ndivq rdx"
            .parse()
            .unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let a = prepared.run_prepared(&input());
        let b = run_instrs(p.instrs(), &input());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.state, b.state);
        assert!(a.faults.undef > 0);
        assert_eq!(a.faults.sigsegv, 1);
        assert_eq!(a.faults.sigfpe, 1);
    }

    #[test]
    fn prepared_latency_matches_program_latency() {
        let p: Program = "movq rdi, -8(rsp)\nmovq -8(rsp), rax\naddq rsi, rax"
            .parse()
            .unwrap();
        assert_eq!(
            PreparedProgram::of_program(&p).static_latency(),
            p.static_latency()
        );
    }

    #[test]
    fn diffed_prepare_is_identical_to_full_prepare() {
        let old: Program = "movq rdi, rax\naddq rsi, rax\nadcq rdi, rax\nxorq rcx, rcx"
            .parse()
            .unwrap();
        let prepared = PreparedProgram::of_program(&old);
        let mut meta = PreparedMeta::new();
        assert!(meta.is_empty());
        meta.store(&prepared);
        assert_eq!(meta.len(), old.len());
        // A single-slot edit, a deletion, an insertion, an unrelated
        // program, and the unchanged program itself.
        let variants = [
            "movq rdi, rax\nsubq rsi, rax\nadcq rdi, rax\nxorq rcx, rcx",
            "movq rdi, rax\nadcq rdi, rax\nxorq rcx, rcx",
            "movq rdi, rax\naddq rsi, rax\nnegq rax\nadcq rdi, rax\nxorq rcx, rcx",
            "negq rdi\nnotq rsi",
            "movq rdi, rax\naddq rsi, rax\nadcq rdi, rax\nxorq rcx, rcx",
        ];
        for text in variants {
            let p: Program = text.parse().unwrap();
            let diffed = PreparedProgram::new_diffed(p.iter(), &meta);
            let full = PreparedProgram::of_program(&p);
            assert_eq!(diffed.len(), full.len());
            assert_eq!(diffed.static_latency(), full.static_latency());
            for i in 0..full.len() {
                assert_eq!(diffed.gpr_uses_of(i), full.gpr_uses_of(i), "{text} @ {i}");
                assert_eq!(diffed.xmm_uses_of(i), full.xmm_uses_of(i), "{text} @ {i}");
                assert_eq!(diffed.flag_uses_of(i), full.flag_uses_of(i), "{text} @ {i}");
            }
            let a = diffed.run_prepared(&input());
            let b = full.run_prepared(&input());
            assert_eq!(a.state, b.state);
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn empty_program_prepares_to_identity() {
        let prepared = PreparedProgram::new(std::iter::empty());
        assert!(prepared.is_empty());
        assert_eq!(prepared.static_latency(), 0);
        let out = prepared.run_prepared(&input());
        assert_eq!(out.state, input());
        assert!(out.faults.is_clean());
    }
}
