//! The decode-once / execute-many evaluation backend.
//!
//! The MCMC inner loop evaluates one candidate rewrite on *every* test
//! case of a suite, and the interpreter ([`run_instrs`](crate::run_instrs))
//! repeats per-instruction work on each case that does not depend on the
//! machine state at all — most importantly the def/use analysis behind the
//! undefined-read fault counter of Equation 11, which allocates fresh use
//! lists on every step. [`PreparedProgram`] hoists that work out of the
//! per-case loop: an instruction sequence is decoded once (typically once
//! per MCMC proposal) into a dense, pre-resolved form, and
//! [`run_prepared`](PreparedProgram::run_prepared) then executes it across
//! all test cases.
//!
//! Execution semantics are shared with the interpreter — both paths drive
//! the same sandboxed step function — so the two backends cannot drift
//! apart; `run_prepared` is bit-identical to `run_instrs` by construction
//! (and by the randomized property test `prop_prepared` at the workspace
//! root).

use crate::exec::{Cpu, Emulator, Outcome};
use crate::state::MachineState;
use stoke_x86::{Flag, Instruction, Program, Reg, Xmm};

/// Per-instruction half-open ranges into the flattened use lists of a
/// [`PreparedProgram`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct UseSpans {
    pub(crate) gpr: (u32, u32),
    pub(crate) xmm: (u32, u32),
    pub(crate) flag: (u32, u32),
}

/// An instruction sequence decoded once into a dense, pre-resolved form
/// that can be executed many times.
///
/// Preparation drops any notion of `UNUSED` slots (callers pass only the
/// live instructions), precomputes every instruction's register/flag use
/// sets for the undefined-read counter, and caches the static latency
/// `H(R)` of Equation 13.
///
/// ```
/// use stoke_emu::{run_instrs, PreparedProgram};
/// use stoke_emu::state::MachineState;
/// use stoke_x86::{Gpr, Program};
///
/// let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
/// let prepared = PreparedProgram::of_program(&p);
/// let mut input = MachineState::new();
/// input.set_gpr64(Gpr::Rdi, 2);
/// input.set_gpr64(Gpr::Rsi, 40);
/// // One prepare, many runs — each bit-identical to the interpreter.
/// for _ in 0..3 {
///     let out = prepared.run_prepared(&input);
///     assert_eq!(out.state, run_instrs(p.instrs(), &input).state);
///     assert_eq!(out.state.read_gpr64(Gpr::Rax), 42);
/// }
/// assert_eq!(prepared.static_latency(), p.static_latency());
/// ```
#[derive(Debug, Clone)]
pub struct PreparedProgram<'a> {
    // Crate-visible so the batched backend (`crate::batch`) can reuse the
    // decoded form — instruction list, flattened use lists and spans —
    // without re-deriving it per proposal.
    pub(crate) instrs: Vec<&'a Instruction>,
    pub(crate) gpr_uses: Vec<Reg>,
    pub(crate) xmm_uses: Vec<Xmm>,
    pub(crate) flag_uses: Vec<Flag>,
    pub(crate) spans: Vec<UseSpans>,
    latency: u64,
}

impl<'a> PreparedProgram<'a> {
    /// Prepare a sequence of instructions (borrowed; preparation performs
    /// the per-proposal decode so that per-test-case execution does no
    /// analysis work and no allocation beyond the machine state itself).
    pub fn new(instrs: impl IntoIterator<Item = &'a Instruction>) -> PreparedProgram<'a> {
        let instrs: Vec<&'a Instruction> = instrs.into_iter().collect();
        let mut prepared = PreparedProgram {
            gpr_uses: Vec::new(),
            xmm_uses: Vec::new(),
            flag_uses: Vec::new(),
            spans: Vec::with_capacity(instrs.len()),
            latency: 0,
            instrs,
        };
        for instr in &prepared.instrs {
            let gpr_start = prepared.gpr_uses.len() as u32;
            instr.gpr_uses_into(&mut prepared.gpr_uses);
            let xmm_start = prepared.xmm_uses.len() as u32;
            instr.xmm_uses_into(&mut prepared.xmm_uses);
            let flag_start = prepared.flag_uses.len() as u32;
            prepared.flag_uses.extend(instr.flag_uses());
            prepared.spans.push(UseSpans {
                gpr: (gpr_start, prepared.gpr_uses.len() as u32),
                xmm: (xmm_start, prepared.xmm_uses.len() as u32),
                flag: (flag_start, prepared.flag_uses.len() as u32),
            });
            prepared.latency += u64::from(instr.latency());
        }
        prepared
    }

    /// Prepare a whole [`Program`].
    pub fn of_program(program: &'a Program) -> PreparedProgram<'a> {
        PreparedProgram::new(program.iter())
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the prepared sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The prepared instructions, in execution order.
    pub fn instructions(&self) -> impl Iterator<Item = &'a Instruction> + '_ {
        self.instrs.iter().copied()
    }

    /// The cached static latency `H(R)` (Equation 13): the sum of every
    /// instruction's latency, including memory-access penalties.
    pub fn static_latency(&self) -> u64 {
        self.latency
    }

    /// The precomputed register uses of instruction `index` (same elements
    /// and order as [`Instruction::gpr_uses`]). Static analyses can read
    /// these instead of re-deriving use sets per proposal.
    pub fn gpr_uses_of(&self, index: usize) -> &[Reg] {
        let span = self.spans[index].gpr;
        &self.gpr_uses[span.0 as usize..span.1 as usize]
    }

    /// The precomputed xmm uses of instruction `index`.
    pub fn xmm_uses_of(&self, index: usize) -> &[Xmm] {
        let span = self.spans[index].xmm;
        &self.xmm_uses[span.0 as usize..span.1 as usize]
    }

    /// The precomputed flag uses of instruction `index`.
    pub fn flag_uses_of(&self, index: usize) -> &[Flag] {
        let span = self.spans[index].flag;
        &self.flag_uses[span.0 as usize..span.1 as usize]
    }

    /// Run the prepared sequence from `input`, sandboxing all undefined
    /// behaviour exactly as [`run_instrs`](crate::run_instrs) does.
    pub fn run_prepared(&self, input: &MachineState) -> Outcome {
        let mut emu = Emulator::start(input);
        for (instr, spans) in self.instrs.iter().zip(&self.spans) {
            // The undefined-read counter of Equation 11, over the
            // precomputed use lists (same elements, same order as the
            // interpreter's per-step analysis).
            for r in &self.gpr_uses[spans.gpr.0 as usize..spans.gpr.1 as usize] {
                if !emu.state.gpr_is_defined(r.parent()) {
                    emu.faults.undef += 1;
                }
            }
            for x in &self.xmm_uses[spans.xmm.0 as usize..spans.xmm.1 as usize] {
                if !emu.state.xmm_is_defined(*x) {
                    emu.faults.undef += 1;
                }
            }
            for f in &self.flag_uses[spans.flag.0 as usize..spans.flag.1 as usize] {
                if !emu.state.flag_is_defined(*f) {
                    emu.faults.undef += 1;
                }
            }
            emu.execute(instr);
        }
        emu.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_instrs;
    use stoke_x86::Gpr;

    fn input() -> MachineState {
        let mut s = MachineState::new();
        s.set_gpr64(Gpr::Rdi, 7);
        s.set_gpr64(Gpr::Rsi, 35);
        s
    }

    #[test]
    fn prepared_matches_interpreter_on_clean_code() {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let a = prepared.run_prepared(&input());
        let b = run_instrs(p.instrs(), &input());
        assert_eq!(a.state, b.state);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.state.read_gpr64(Gpr::Rax), 42);
        assert_eq!(prepared.len(), 2);
        assert!(!prepared.is_empty());
    }

    #[test]
    fn prepared_counts_faults_identically() {
        // Undefined reads (rbx, flags before adc), a wild load, and a
        // divide by zero, all in one program.
        let p: Program = "addq rbx, rdi\nmovq (rbx), rcx\nxorq rdx, rdx\ndivq rdx"
            .parse()
            .unwrap();
        let prepared = PreparedProgram::of_program(&p);
        let a = prepared.run_prepared(&input());
        let b = run_instrs(p.instrs(), &input());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.state, b.state);
        assert!(a.faults.undef > 0);
        assert_eq!(a.faults.sigsegv, 1);
        assert_eq!(a.faults.sigfpe, 1);
    }

    #[test]
    fn prepared_latency_matches_program_latency() {
        let p: Program = "movq rdi, -8(rsp)\nmovq -8(rsp), rax\naddq rsi, rax"
            .parse()
            .unwrap();
        assert_eq!(
            PreparedProgram::of_program(&p).static_latency(),
            p.static_latency()
        );
    }

    #[test]
    fn empty_program_prepares_to_identity() {
        let prepared = PreparedProgram::new(std::iter::empty());
        assert!(prepared.is_empty());
        assert_eq!(prepared.static_latency(), 0);
        let out = prepared.run_prepared(&input());
        assert_eq!(out.state, input());
        assert!(out.faults.is_clean());
    }
}
