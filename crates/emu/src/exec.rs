//! Concrete execution of the modelled x86-64 subset.
//!
//! Candidate rewrites are executed in a sandbox (§5.1): invalid memory
//! dereferences, arithmetic exceptions and reads from undefined registers
//! are trapped, counted in [`Faults`] and replaced with safe defaults
//! (zero values / discarded stores) so that execution can always continue.
//! The fault counters feed the `err(·)` term of the cost function
//! (Equation 11 of the paper).
//!
//! The semantics implemented here are mirrored symbolically by
//! `stoke-verify`; the two are kept in agreement by randomized
//! differential tests in `tests/emu_vs_verify.rs`.

use crate::state::{MachineState, XmmValue};
use stoke_x86::{
    AluOp, BitOp, Flag, Gpr, Instruction, Mem, Opcode, Operand, Program, Reg, ShiftOp, SseBinOp,
    SseShiftOp, UnOp, Width, Xmm,
};

/// Counts of the undefined behaviours observed while executing a rewrite.
///
/// These are the `sigsegv(·)`, `sigfloat(·)` and `undef(·)` counters of
/// Equation 11. Arithmetic exceptions (division by zero or quotient
/// overflow) play the role of the paper's floating point exceptions: the
/// modelled opcode subset is fixed-point only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Faults {
    /// Number of out-of-sandbox memory accesses.
    pub sigsegv: u64,
    /// Number of arithmetic exceptions (divide by zero / quotient overflow).
    pub sigfpe: u64,
    /// Number of reads from undefined registers or flags.
    pub undef: u64,
}

impl Faults {
    /// Whether no fault occurred.
    pub fn is_clean(&self) -> bool {
        self.sigsegv == 0 && self.sigfpe == 0 && self.undef == 0
    }

    /// Total number of faults, irrespective of kind.
    pub fn total(&self) -> u64 {
        self.sigsegv + self.sigfpe + self.undef
    }
}

/// The result of running a program on an input state.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The final machine state.
    pub state: MachineState,
    /// The faults observed during execution.
    pub faults: Faults,
}

/// Run `program` from `input`, sandboxing all undefined behaviour.
///
/// ```
/// use stoke_emu::run;
/// use stoke_emu::state::MachineState;
/// use stoke_x86::{Gpr, Program};
///
/// let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
/// let mut input = MachineState::new();
/// input.set_gpr64(Gpr::Rdi, 2);
/// input.set_gpr64(Gpr::Rsi, 40);
/// let out = run(&p, &input);
/// assert_eq!(out.state.read_gpr64(Gpr::Rax), 42);
/// assert!(out.faults.is_clean());
/// ```
pub fn run(program: &Program, input: &MachineState) -> Outcome {
    run_instrs(program.instrs(), input)
}

/// Run a slice of instructions from `input` (see [`run`]).
pub fn run_instrs(instrs: &[Instruction], input: &MachineState) -> Outcome {
    run_instr_refs(instrs, input)
}

/// Run a sequence of borrowed instructions through the per-step
/// interpreter (see [`run`]). This is the reference execution path of the
/// `Interp` backend: per-instruction analysis (the undefined-read counter)
/// is recomputed on every step, with no preparation pass.
pub fn run_instr_refs<'a>(
    instrs: impl IntoIterator<Item = &'a Instruction>,
    input: &MachineState,
) -> Outcome {
    let mut emu = Emulator::start(input);
    for instr in instrs {
        emu.step(instr);
    }
    emu.finish()
}

/// The sandboxed interpreter state shared by [`run_instrs`] and the
/// prepared-program backend ([`crate::prepare::PreparedProgram`]). All
/// instruction semantics live in the [`Cpu`] trait's provided
/// [`execute`](Cpu::execute) method, which the batched backend
/// ([`crate::batch::BatchedProgram`]) reuses through its own column-view
/// [`Cpu`] implementation, so the execution paths cannot drift apart
/// semantically.
pub(crate) struct Emulator {
    pub(crate) state: MachineState,
    pub(crate) faults: Faults,
}

impl Emulator {
    pub(crate) fn start(input: &MachineState) -> Emulator {
        Emulator {
            state: input.clone(),
            faults: Faults::default(),
        }
    }

    pub(crate) fn finish(self) -> Outcome {
        Outcome {
            state: self.state,
            faults: self.faults,
        }
    }

    fn step(&mut self, instr: &Instruction) {
        self.count_undefined_reads(instr);
        self.execute(instr);
    }

    /// Count reads from registers or flags that have not been defined.
    fn count_undefined_reads(&mut self, instr: &Instruction) {
        for r in instr.gpr_uses() {
            if !self.state.gpr_is_defined(r.parent()) {
                self.faults.undef += 1;
            }
        }
        for x in instr.xmm_uses() {
            if !self.state.xmm_is_defined(x) {
                self.faults.undef += 1;
            }
        }
        for f in instr.flag_uses() {
            if !self.state.flag_is_defined(*f) {
                self.faults.undef += 1;
            }
        }
    }
}

/// The primitive state accesses an execution backend must provide; every
/// instruction's semantics are written once, as provided methods over
/// these primitives (most importantly [`Cpu::execute`]).
///
/// Implemented by [`Emulator`] (one [`MachineState`] per test case: the
/// interpreter and prepared backends) and by the batched backend's column
/// view into a structure-of-arrays [`crate::batch::BatchState`]. Because
/// both run the identical provided bodies, the backends agree
/// bit-for-bit by construction.
pub(crate) trait Cpu {
    /// Read a register view (masked to the view's width).
    fn read_reg(&self, r: Reg) -> u64;
    /// Write a register view with x86-64 merge semantics; marks defined.
    fn write_reg(&mut self, r: Reg, value: u64);
    /// Read the full 64-bit value of an architectural register.
    fn read_gpr64(&self, g: Gpr) -> u64;
    /// Overwrite the full 64-bit value of a register; marks defined.
    fn set_gpr64(&mut self, g: Gpr, value: u64);
    /// Read an SSE register.
    fn read_xmm(&self, x: Xmm) -> XmmValue;
    /// Write an SSE register; marks defined.
    fn write_xmm(&mut self, x: Xmm, value: XmmValue);
    /// Read a status flag.
    fn read_flag(&self, f: Flag) -> bool;
    /// Write a status flag; marks defined.
    fn write_flag(&mut self, f: Flag, value: bool);
    /// Sandboxed load of `len <= 8` bytes (`None` on a fault).
    fn mem_load(&self, addr: u64, len: u64) -> Option<u64>;
    /// Sandboxed store of `len <= 8` bytes (`false` on a fault).
    fn mem_store(&mut self, addr: u64, value: u64, len: u64) -> bool;
    /// Sandboxed 128-bit load.
    fn mem_load128(&self, addr: u64) -> Option<XmmValue>;
    /// Sandboxed 128-bit store.
    fn mem_store128(&mut self, addr: u64, value: XmmValue) -> bool;
    /// Record an out-of-sandbox memory access.
    fn fault_sigsegv(&mut self);
    /// Record an arithmetic exception.
    fn fault_sigfpe(&mut self);

    fn addr(&self, m: &Mem) -> u64 {
        let base = m.base.map_or(0, |b| self.read_gpr64(b));
        let index = m.index.map_or(0, |i| self.read_gpr64(i));
        base.wrapping_add(index.wrapping_mul(m.scale.factor()))
            .wrapping_add(m.disp as i64 as u64)
    }

    /// Read a scalar operand at the given width (masked).
    fn read(&mut self, op: &Operand, w: Width) -> u64 {
        match op {
            Operand::Reg(r) => self.read_reg(Reg::new(r.parent(), w)),
            Operand::Imm(i) => w.truncate(*i as u64),
            Operand::Mem(m) => {
                let addr = self.addr(m);
                match self.mem_load(addr, w.bytes()) {
                    Some(v) => v,
                    None => {
                        self.fault_sigsegv();
                        0
                    }
                }
            }
            Operand::Xmm(x) => self.read_xmm(*x)[0],
        }
    }

    /// Write a scalar result to a register or memory destination.
    fn write(&mut self, op: &Operand, w: Width, value: u64) {
        match op {
            Operand::Reg(r) => self.write_reg(Reg::new(r.parent(), w), value),
            Operand::Mem(m) => {
                let addr = self.addr(m);
                if !self.mem_store(addr, w.truncate(value), w.bytes()) {
                    self.fault_sigsegv();
                }
            }
            Operand::Imm(_) | Operand::Xmm(_) => {
                unreachable!("scalar destination cannot be an immediate or xmm")
            }
        }
    }

    /// Read a 128-bit operand (xmm or memory).
    fn read128(&mut self, op: &Operand) -> XmmValue {
        match op {
            Operand::Xmm(x) => self.read_xmm(*x),
            Operand::Mem(m) => {
                let addr = self.addr(m);
                match self.mem_load128(addr) {
                    Some(v) => v,
                    None => {
                        self.fault_sigsegv();
                        [0, 0]
                    }
                }
            }
            _ => unreachable!("128-bit operand must be xmm or memory"),
        }
    }

    /// Write a 128-bit result (xmm or memory destination).
    fn write128(&mut self, op: &Operand, value: XmmValue) {
        match op {
            Operand::Xmm(x) => self.write_xmm(*x, value),
            Operand::Mem(m) => {
                let addr = self.addr(m);
                if !self.mem_store128(addr, value) {
                    self.fault_sigsegv();
                }
            }
            _ => unreachable!("128-bit destination must be xmm or memory"),
        }
    }

    fn flags(&self) -> (bool, bool, bool, bool) {
        (
            self.read_flag(Flag::Cf),
            self.read_flag(Flag::Zf),
            self.read_flag(Flag::Sf),
            self.read_flag(Flag::Of),
        )
    }

    fn set_result_flags(&mut self, w: Width, r: u64) {
        self.write_flag(Flag::Zf, w.truncate(r) == 0);
        self.write_flag(Flag::Sf, w.sign_bit(r));
        self.write_flag(
            Flag::Pf,
            (w.truncate(r) as u8).count_ones().is_multiple_of(2),
        );
    }

    fn set_flags_add(&mut self, w: Width, a: u64, b: u64, carry_in: u64, r: u64) {
        let full = u128::from(a) + u128::from(b) + u128::from(carry_in);
        let cf = full > u128::from(w.mask());
        let of = (w.sign_bit(a) == w.sign_bit(b)) && (w.sign_bit(r) != w.sign_bit(a));
        self.write_flag(Flag::Cf, cf);
        self.write_flag(Flag::Of, of);
        self.set_result_flags(w, r);
    }

    fn set_flags_sub(&mut self, w: Width, a: u64, b: u64, borrow_in: u64, r: u64) {
        let cf = u128::from(a) < u128::from(b) + u128::from(borrow_in);
        let of = (w.sign_bit(a) != w.sign_bit(b)) && (w.sign_bit(r) != w.sign_bit(a));
        self.write_flag(Flag::Cf, cf);
        self.write_flag(Flag::Of, of);
        self.set_result_flags(w, r);
    }

    fn set_flags_logic(&mut self, w: Width, r: u64) {
        self.write_flag(Flag::Cf, false);
        self.write_flag(Flag::Of, false);
        self.set_result_flags(w, r);
    }

    /// Execute one instruction's semantics (the undefined-read counter is
    /// the caller's responsibility — see [`Emulator::step`] and the
    /// batched column loop).
    fn execute(&mut self, instr: &Instruction) {
        let ops = instr.operands();
        match instr.opcode() {
            Opcode::Nop => {}
            Opcode::Mov(w) => {
                let v = self.read(&ops[0], w);
                self.write(&ops[1], w, v);
            }
            Opcode::Movabs => {
                let v = ops[0].as_imm().unwrap_or(0) as u64;
                self.write(&ops[1], Width::Q, v);
            }
            Opcode::Movslq => {
                let v = self.read(&ops[0], Width::L);
                self.write(&ops[1], Width::Q, Width::L.sign_extend(v));
            }
            Opcode::Movsbq => {
                let v = self.read(&ops[0], Width::B);
                self.write(&ops[1], Width::Q, Width::B.sign_extend(v));
            }
            Opcode::Movsbl => {
                let v = self.read(&ops[0], Width::B);
                self.write(&ops[1], Width::L, Width::B.sign_extend(v));
            }
            Opcode::Movzbq => {
                let v = self.read(&ops[0], Width::B);
                self.write(&ops[1], Width::Q, v);
            }
            Opcode::Movzbl => {
                let v = self.read(&ops[0], Width::B);
                self.write(&ops[1], Width::L, v);
            }
            Opcode::Lea(w) => {
                let m = ops[0].as_mem().expect("lea source is a memory operand");
                let addr = self.addr(&m);
                self.write(&ops[1], w, addr);
            }
            Opcode::Xchg(w) => {
                let a = self.read(&ops[0], w);
                let b = self.read(&ops[1], w);
                self.write(&ops[0], w, b);
                self.write(&ops[1], w, a);
            }
            Opcode::Push => {
                let v = self.read(&ops[0], Width::Q);
                let rsp = self.read_gpr64(Gpr::Rsp).wrapping_sub(8);
                self.set_gpr64(Gpr::Rsp, rsp);
                if !self.mem_store(rsp, v, 8) {
                    self.fault_sigsegv();
                }
            }
            Opcode::Pop => {
                let rsp = self.read_gpr64(Gpr::Rsp);
                let v = match self.mem_load(rsp, 8) {
                    Some(v) => v,
                    None => {
                        self.fault_sigsegv();
                        0
                    }
                };
                self.set_gpr64(Gpr::Rsp, rsp.wrapping_add(8));
                self.write(&ops[0], Width::Q, v);
            }
            Opcode::Cmov(c, w) => {
                let (cf, zf, sf, of) = self.flags();
                let take = c.eval(cf, zf, sf, of);
                let v = self.read(&ops[0], w);
                let old = self.read(&ops[1], w);
                // A 32-bit cmov zero-extends its destination even when the
                // condition is false, exactly as the hardware does.
                self.write(&ops[1], w, if take { v } else { old });
            }
            Opcode::Set(c) => {
                let (cf, zf, sf, of) = self.flags();
                let v = u64::from(c.eval(cf, zf, sf, of));
                self.write(&ops[0], Width::B, v);
            }
            Opcode::Alu(op, w) => {
                let src = self.read(&ops[0], w);
                let dst = self.read(&ops[1], w);
                let carry = u64::from(self.read_flag(Flag::Cf));
                let result = match op {
                    AluOp::Add => w.truncate(dst.wrapping_add(src)),
                    AluOp::Adc => w.truncate(dst.wrapping_add(src).wrapping_add(carry)),
                    AluOp::Sub => w.truncate(dst.wrapping_sub(src)),
                    AluOp::Sbb => w.truncate(dst.wrapping_sub(src).wrapping_sub(carry)),
                    AluOp::And => dst & src,
                    AluOp::Or => dst | src,
                    AluOp::Xor => dst ^ src,
                };
                match op {
                    AluOp::Add => self.set_flags_add(w, dst, src, 0, result),
                    AluOp::Adc => self.set_flags_add(w, dst, src, carry, result),
                    AluOp::Sub => self.set_flags_sub(w, dst, src, 0, result),
                    AluOp::Sbb => self.set_flags_sub(w, dst, src, carry, result),
                    AluOp::And | AluOp::Or | AluOp::Xor => self.set_flags_logic(w, result),
                }
                self.write(&ops[1], w, result);
            }
            Opcode::Cmp(w) => {
                let src = self.read(&ops[0], w);
                let dst = self.read(&ops[1], w);
                let result = w.truncate(dst.wrapping_sub(src));
                self.set_flags_sub(w, dst, src, 0, result);
            }
            Opcode::Test(w) => {
                let src = self.read(&ops[0], w);
                let dst = self.read(&ops[1], w);
                self.set_flags_logic(w, dst & src);
            }
            Opcode::Un(op, w) => {
                let a = self.read(&ops[0], w);
                match op {
                    UnOp::Neg => {
                        let r = w.truncate(0u64.wrapping_sub(a));
                        self.set_flags_sub(w, 0, a, 0, r);
                        self.write(&ops[0], w, r);
                    }
                    UnOp::Not => {
                        let r = w.truncate(!a);
                        self.write(&ops[0], w, r);
                    }
                    UnOp::Inc => {
                        let r = w.truncate(a.wrapping_add(1));
                        // inc preserves CF.
                        let of =
                            (w.sign_bit(a) == w.sign_bit(1)) && (w.sign_bit(r) != w.sign_bit(a));
                        self.write_flag(Flag::Of, of);
                        self.set_result_flags(w, r);
                        self.write(&ops[0], w, r);
                    }
                    UnOp::Dec => {
                        let r = w.truncate(a.wrapping_sub(1));
                        let of =
                            (w.sign_bit(a) != w.sign_bit(1)) && (w.sign_bit(r) != w.sign_bit(a));
                        self.write_flag(Flag::Of, of);
                        self.set_result_flags(w, r);
                        self.write(&ops[0], w, r);
                    }
                }
            }
            Opcode::Imul2(w) => {
                let src = self.read(&ops[0], w);
                let dst = self.read(&ops[1], w);
                let full =
                    (w.sign_extend(src) as i64 as i128) * (w.sign_extend(dst) as i64 as i128);
                let r = w.truncate(full as u64);
                let overflow = full != (w.sign_extend(r) as i64 as i128);
                self.write_flag(Flag::Cf, overflow);
                self.write_flag(Flag::Of, overflow);
                self.set_result_flags(w, r);
                self.write(&ops[1], w, r);
            }
            Opcode::Imul1(w) => {
                let src = self.read(&ops[0], w);
                let acc = self.read_reg(Gpr::Rax.view(w));
                let full =
                    (w.sign_extend(src) as i64 as i128) * (w.sign_extend(acc) as i64 as i128);
                let lo = w.truncate(full as u64);
                let hi = w.truncate((full >> w.bits()) as u64);
                let overflow = full != (w.sign_extend(lo) as i64 as i128);
                self.write_reg(Gpr::Rax.view(w), lo);
                self.write_reg(Gpr::Rdx.view(w), hi);
                self.write_flag(Flag::Cf, overflow);
                self.write_flag(Flag::Of, overflow);
                self.set_result_flags(w, lo);
            }
            Opcode::Mul1(w) => {
                let src = self.read(&ops[0], w);
                let acc = self.read_reg(Gpr::Rax.view(w));
                let full = u128::from(src) * u128::from(acc);
                let lo = w.truncate(full as u64);
                let hi = w.truncate((full >> w.bits()) as u64);
                let overflow = hi != 0;
                self.write_reg(Gpr::Rax.view(w), lo);
                self.write_reg(Gpr::Rdx.view(w), hi);
                self.write_flag(Flag::Cf, overflow);
                self.write_flag(Flag::Of, overflow);
                self.set_result_flags(w, lo);
            }
            Opcode::Div(w) => {
                let divisor = self.read(&ops[0], w);
                let lo = u128::from(self.read_reg(Gpr::Rax.view(w)));
                let hi = u128::from(self.read_reg(Gpr::Rdx.view(w)));
                let dividend = (hi << w.bits()) | lo;
                if divisor == 0 {
                    self.fault_sigfpe();
                } else {
                    let q = dividend / u128::from(divisor);
                    let r = dividend % u128::from(divisor);
                    if q > u128::from(w.mask()) {
                        self.fault_sigfpe();
                    } else {
                        self.write_reg(Gpr::Rax.view(w), q as u64);
                        self.write_reg(Gpr::Rdx.view(w), r as u64);
                        self.set_flags_logic(w, q as u64);
                    }
                }
            }
            Opcode::Idiv(w) => {
                let divisor = w.sign_extend(self.read(&ops[0], w)) as i64 as i128;
                let lo = u128::from(self.read_reg(Gpr::Rax.view(w)));
                let hi = u128::from(self.read_reg(Gpr::Rdx.view(w)));
                let dividend_bits = (hi << w.bits()) | lo;
                // Sign-extend the 2w-bit dividend.
                let shift = 128 - 2 * w.bits();
                let dividend = ((dividend_bits << shift) as i128) >> shift;
                if divisor == 0 {
                    self.fault_sigfpe();
                } else {
                    let q = dividend.wrapping_div(divisor);
                    let r = dividend.wrapping_rem(divisor);
                    let min = -(1i128 << (w.bits() - 1));
                    let max = (1i128 << (w.bits() - 1)) - 1;
                    if q < min || q > max {
                        self.fault_sigfpe();
                    } else {
                        self.write_reg(Gpr::Rax.view(w), w.truncate(q as u64));
                        self.write_reg(Gpr::Rdx.view(w), w.truncate(r as u64));
                        self.set_flags_logic(w, w.truncate(q as u64));
                    }
                }
            }
            Opcode::Shift(op, w) => {
                let count_mask = if w == Width::Q { 0x3f } else { 0x1f };
                let count = (self.read(&ops[0], Width::B) & count_mask) as u32;
                let a = self.read(&ops[1], w);
                if count == 0 {
                    // Shift by zero leaves the destination and flags alone,
                    // but a 32-bit destination register is still renormalized.
                    self.write(&ops[1], w, a);
                    return;
                }
                let bits = w.bits();
                let (r, cf) = match op {
                    ShiftOp::Shl => {
                        let r = if count >= bits {
                            0
                        } else {
                            w.truncate(a << count)
                        };
                        let cf = if count <= bits {
                            (a >> (bits - count)) & 1 == 1
                        } else {
                            false
                        };
                        (r, cf)
                    }
                    ShiftOp::Shr => {
                        let r = if count >= bits { 0 } else { a >> count };
                        let cf = if count <= bits {
                            (a >> (count - 1)) & 1 == 1
                        } else {
                            false
                        };
                        (r, cf)
                    }
                    ShiftOp::Sar => {
                        let sa = w.sign_extend(a) as i64;
                        let shift = count.min(bits - 1);
                        let r = w.truncate((sa >> shift) as u64);
                        let cf = ((sa >> (count.min(bits) - 1).min(63)) & 1) == 1;
                        (r, cf)
                    }
                    ShiftOp::Rol => {
                        let c = count % bits;
                        let r = if c == 0 {
                            a
                        } else {
                            w.truncate((a << c) | (a >> (bits - c)))
                        };
                        (r, r & 1 == 1)
                    }
                    ShiftOp::Ror => {
                        let c = count % bits;
                        let r = if c == 0 {
                            a
                        } else {
                            w.truncate((a >> c) | (a << (bits - c)))
                        };
                        (r, w.sign_bit(r))
                    }
                };
                self.write_flag(Flag::Cf, cf);
                match op {
                    ShiftOp::Rol | ShiftOp::Ror => {
                        // Rotates only touch CF and OF; model OF as the xor
                        // of the two top bits of the result, deterministically.
                        let of = w.sign_bit(r) ^ (((r >> (bits - 2)) & 1) == 1);
                        self.write_flag(Flag::Of, of);
                    }
                    _ => {
                        let of = w.sign_bit(r) ^ cf;
                        self.write_flag(Flag::Of, of);
                        self.set_result_flags(w, r);
                    }
                }
                self.write(&ops[1], w, r);
            }
            Opcode::Bits(op, w) => match op {
                BitOp::Popcnt => {
                    let a = self.read(&ops[0], w);
                    let r = u64::from(a.count_ones());
                    self.write_flag(Flag::Cf, false);
                    self.write_flag(Flag::Of, false);
                    self.write_flag(Flag::Sf, false);
                    self.write_flag(Flag::Pf, false);
                    self.write_flag(Flag::Zf, a == 0);
                    self.write(&ops[1], w, r);
                }
                BitOp::Bsf | BitOp::Bsr => {
                    let a = self.read(&ops[0], w);
                    if a == 0 {
                        self.write_flag(Flag::Zf, true);
                        // Destination is architecturally undefined; we model
                        // it as unchanged (and renormalized for 32-bit).
                        let old = self.read(&ops[1], w);
                        self.write(&ops[1], w, old);
                    } else {
                        self.write_flag(Flag::Zf, false);
                        let r = if op == BitOp::Bsf {
                            u64::from(a.trailing_zeros())
                        } else {
                            u64::from(63 - a.leading_zeros())
                        };
                        self.write(&ops[1], w, r);
                    }
                }
                BitOp::Bswap => {
                    let a = self.read(&ops[0], w);
                    let r = match w {
                        Width::Q => a.swap_bytes(),
                        Width::L => u64::from((a as u32).swap_bytes()),
                        Width::W => u64::from((a as u16).swap_bytes()),
                        Width::B => a,
                    };
                    self.write(&ops[0], w, r);
                }
            },
            Opcode::Cqto => {
                let rax = self.read_gpr64(Gpr::Rax);
                let v = if rax >> 63 == 1 { u64::MAX } else { 0 };
                self.set_gpr64(Gpr::Rdx, v);
            }
            Opcode::Cltq => {
                let eax = self.read_reg(Gpr::Rax.view(Width::L));
                self.set_gpr64(Gpr::Rax, Width::L.sign_extend(eax));
            }
            Opcode::Cltd => {
                let eax = self.read_reg(Gpr::Rax.view(Width::L));
                let v = if Width::L.sign_bit(eax) {
                    0xffff_ffff
                } else {
                    0
                };
                self.write_reg(Gpr::Rdx.view(Width::L), v);
            }
            Opcode::MovdToXmm => {
                let v = self.read(&ops[0], Width::L);
                self.write128(&ops[1], [v, 0]);
            }
            Opcode::MovdFromXmm => {
                let v = self.read128(&ops[0]);
                self.write(&ops[1], Width::L, v[0] & 0xffff_ffff);
            }
            Opcode::MovqToXmm => {
                let v = self.read(&ops[0], Width::Q);
                self.write128(&ops[1], [v, 0]);
            }
            Opcode::MovqFromXmm => {
                let v = self.read128(&ops[0]);
                self.write(&ops[1], Width::Q, v[0]);
            }
            Opcode::Mov128(_) => {
                let v = self.read128(&ops[0]);
                self.write128(&ops[1], v);
            }
            Opcode::SseBin(op) => {
                let src = self.read128(&ops[0]);
                let dst = self.read128(&ops[1]);
                self.write128(&ops[1], sse_bin(op, dst, src));
            }
            Opcode::SseShift(op) => {
                let count = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let dst = self.read128(&ops[1]);
                self.write128(&ops[1], sse_shift(op, dst, count));
            }
            Opcode::Pshufd => {
                let imm = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let src = self.read128(&ops[1]);
                let lanes = to_lanes32(src);
                let pick = |sel: u64| lanes[(sel & 3) as usize];
                let out = [pick(imm), pick(imm >> 2), pick(imm >> 4), pick(imm >> 6)];
                self.write128(&ops[2], from_lanes32(out));
            }
            Opcode::Shufps => {
                let imm = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let src = to_lanes32(self.read128(&ops[1]));
                let dst = to_lanes32(self.read128(&ops[2]));
                let out = [
                    dst[(imm & 3) as usize],
                    dst[((imm >> 2) & 3) as usize],
                    src[((imm >> 4) & 3) as usize],
                    src[((imm >> 6) & 3) as usize],
                ];
                self.write128(&ops[2], from_lanes32(out));
            }
            Opcode::Punpckldq => {
                let src = to_lanes32(self.read128(&ops[0]));
                let dst = to_lanes32(self.read128(&ops[1]));
                self.write128(&ops[1], from_lanes32([dst[0], src[0], dst[1], src[1]]));
            }
            Opcode::Punpcklqdq => {
                let src = self.read128(&ops[0]);
                let dst = self.read128(&ops[1]);
                self.write128(&ops[1], [dst[0], src[0]]);
            }
        }
    }
}

impl Cpu for Emulator {
    fn read_reg(&self, r: Reg) -> u64 {
        self.state.read_reg(r)
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        self.state.write_reg(r, value);
    }

    fn read_gpr64(&self, g: Gpr) -> u64 {
        self.state.read_gpr64(g)
    }

    fn set_gpr64(&mut self, g: Gpr, value: u64) {
        self.state.set_gpr64(g, value);
    }

    fn read_xmm(&self, x: Xmm) -> XmmValue {
        self.state.read_xmm(x)
    }

    fn write_xmm(&mut self, x: Xmm, value: XmmValue) {
        self.state.write_xmm(x, value);
    }

    fn read_flag(&self, f: Flag) -> bool {
        self.state.read_flag(f)
    }

    fn write_flag(&mut self, f: Flag, value: bool) {
        self.state.write_flag(f, value);
    }

    fn mem_load(&self, addr: u64, len: u64) -> Option<u64> {
        self.state.memory.load(addr, len)
    }

    fn mem_store(&mut self, addr: u64, value: u64, len: u64) -> bool {
        self.state.memory.store(addr, value, len)
    }

    fn mem_load128(&self, addr: u64) -> Option<XmmValue> {
        self.state.memory.load128(addr)
    }

    fn mem_store128(&mut self, addr: u64, value: XmmValue) -> bool {
        self.state.memory.store128(addr, value)
    }

    fn fault_sigsegv(&mut self) {
        self.faults.sigsegv += 1;
    }

    fn fault_sigfpe(&mut self) {
        self.faults.sigfpe += 1;
    }
}

fn to_lanes32(v: XmmValue) -> [u32; 4] {
    [
        v[0] as u32,
        (v[0] >> 32) as u32,
        v[1] as u32,
        (v[1] >> 32) as u32,
    ]
}

fn from_lanes32(l: [u32; 4]) -> XmmValue {
    [
        u64::from(l[0]) | (u64::from(l[1]) << 32),
        u64::from(l[2]) | (u64::from(l[3]) << 32),
    ]
}

fn map_lanes(a: XmmValue, b: XmmValue, lane_bits: u32, f: impl Fn(u64, u64) -> u64) -> XmmValue {
    let mut out = [0u64; 2];
    let lanes_per_word = 64 / lane_bits;
    let mask = if lane_bits == 64 {
        u64::MAX
    } else {
        (1u64 << lane_bits) - 1
    };
    for word in 0..2 {
        let mut acc = 0u64;
        for lane in 0..lanes_per_word {
            let shift = lane * lane_bits;
            let x = (a[word] >> shift) & mask;
            let y = (b[word] >> shift) & mask;
            acc |= (f(x, y) & mask) << shift;
        }
        out[word] = acc;
    }
    out
}

/// Packed integer binary operation semantics (`dst = op(dst, src)`).
pub fn sse_bin(op: SseBinOp, dst: XmmValue, src: XmmValue) -> XmmValue {
    match op {
        SseBinOp::Paddb => map_lanes(dst, src, 8, |a, b| a.wrapping_add(b)),
        SseBinOp::Paddw => map_lanes(dst, src, 16, |a, b| a.wrapping_add(b)),
        SseBinOp::Paddd => map_lanes(dst, src, 32, |a, b| a.wrapping_add(b)),
        SseBinOp::Paddq => map_lanes(dst, src, 64, |a, b| a.wrapping_add(b)),
        SseBinOp::Psubb => map_lanes(dst, src, 8, |a, b| a.wrapping_sub(b)),
        SseBinOp::Psubw => map_lanes(dst, src, 16, |a, b| a.wrapping_sub(b)),
        SseBinOp::Psubd => map_lanes(dst, src, 32, |a, b| a.wrapping_sub(b)),
        SseBinOp::Psubq => map_lanes(dst, src, 64, |a, b| a.wrapping_sub(b)),
        SseBinOp::Pmullw => map_lanes(dst, src, 16, |a, b| a.wrapping_mul(b)),
        SseBinOp::Pmulld => map_lanes(dst, src, 32, |a, b| a.wrapping_mul(b)),
        SseBinOp::Pmuludq => {
            let lo = (dst[0] & 0xffff_ffff).wrapping_mul(src[0] & 0xffff_ffff);
            let hi = (dst[1] & 0xffff_ffff).wrapping_mul(src[1] & 0xffff_ffff);
            [lo, hi]
        }
        SseBinOp::Pand => [dst[0] & src[0], dst[1] & src[1]],
        SseBinOp::Por => [dst[0] | src[0], dst[1] | src[1]],
        SseBinOp::Pxor => [dst[0] ^ src[0], dst[1] ^ src[1]],
        SseBinOp::Pandn => [!dst[0] & src[0], !dst[1] & src[1]],
    }
}

/// Packed shift-by-immediate semantics (`dst = op(dst, count)`).
pub fn sse_shift(op: SseShiftOp, dst: XmmValue, count: u64) -> XmmValue {
    let shift = |lane_bits: u32, left: bool| -> XmmValue {
        if count >= u64::from(lane_bits) {
            return [0, 0];
        }
        map_lanes(dst, dst, lane_bits, |a, _| {
            if left {
                a << count
            } else {
                a >> count
            }
        })
    };
    match op {
        SseShiftOp::Psllw => shift(16, true),
        SseShiftOp::Pslld => shift(32, true),
        SseShiftOp::Psllq => shift(64, true),
        SseShiftOp::Psrlw => shift(16, false),
        SseShiftOp::Psrld => shift(32, false),
        SseShiftOp::Psrlq => shift(64, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Program;

    fn state_with(regs: &[(Gpr, u64)]) -> MachineState {
        let mut s = MachineState::new();
        for (g, v) in regs {
            s.set_gpr64(*g, *v);
        }
        s
    }

    fn run_text(text: &str, input: &MachineState) -> Outcome {
        let p: Program = text.parse().unwrap();
        run(&p, input)
    }

    #[test]
    fn mov_and_add() {
        let s = state_with(&[(Gpr::Rdi, 7), (Gpr::Rsi, 35)]);
        let out = run_text("movq rdi, rax\naddq rsi, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 42);
        assert!(out.faults.is_clean());
    }

    #[test]
    fn mov32_zero_extends() {
        let s = state_with(&[(Gpr::Rdx, 0xffff_ffff_1234_5678)]);
        let out = run_text("mov edx, edx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), 0x1234_5678);
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let s = state_with(&[(Gpr::Rax, u64::MAX), (Gpr::Rbx, 1)]);
        let out = run_text("addq rbx, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0);
        assert!(out.state.read_flag(Flag::Cf));
        assert!(out.state.read_flag(Flag::Zf));
        assert!(!out.state.read_flag(Flag::Of));

        let s = state_with(&[(Gpr::Rax, 0x7fff_ffff_ffff_ffff), (Gpr::Rbx, 1)]);
        let out = run_text("addq rbx, rax", &s);
        assert!(out.state.read_flag(Flag::Of));
        assert!(!out.state.read_flag(Flag::Cf));
    }

    #[test]
    fn adc_chains_carries() {
        // 128-bit increment of 0x0000_0001_ffff_ffff_ffff_ffff.
        let s = state_with(&[(Gpr::Rax, u64::MAX), (Gpr::Rdx, 1), (Gpr::Rbx, 1)]);
        let out = run_text("addq rbx, rax\nadcq 0, rdx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), 2);
    }

    #[test]
    fn sub_cmp_flags_and_cmov() {
        let s = state_with(&[(Gpr::Rdi, 5), (Gpr::Rcx, 5), (Gpr::Rsi, 99)]);
        let out = run_text("cmpl edi, ecx\ncmovel esi, ecx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rcx), 99);
        let s = state_with(&[(Gpr::Rdi, 6), (Gpr::Rcx, 5), (Gpr::Rsi, 99)]);
        let out = run_text("cmpl edi, ecx\ncmovel esi, ecx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rcx), 5);
    }

    #[test]
    fn setcc_writes_one_byte() {
        let s = state_with(&[(Gpr::Rdi, 3), (Gpr::Rsi, 3), (Gpr::Rdx, 0xffff_ff00)]);
        let out = run_text("cmpq rdi, rsi\nsete dl", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), 0xffff_ff01);
    }

    #[test]
    fn widening_multiply() {
        // 2^63 * 2 = 2^64: low half 0, high half 1.
        let s = state_with(&[(Gpr::Rax, 1u64 << 63), (Gpr::Rsi, 2)]);
        let out = run_text("mulq rsi", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), 1);
        assert!(out.state.read_flag(Flag::Cf));
    }

    #[test]
    fn signed_widening_multiply_32() {
        let s = state_with(&[(Gpr::Rax, (-3i32) as u32 as u64), (Gpr::Rsi, 7)]);
        let out = run_text("imull esi", &s);
        assert_eq!(
            out.state.read_reg(Gpr::Rax.view(Width::L)),
            (-21i32) as u32 as u64
        );
        assert_eq!(
            out.state.read_reg(Gpr::Rdx.view(Width::L)),
            u64::from(u32::MAX)
        );
    }

    #[test]
    fn imul2_truncates_and_flags_overflow() {
        let s = state_with(&[(Gpr::Rax, 1u64 << 62), (Gpr::Rbx, 4)]);
        let out = run_text("imulq rbx, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0);
        assert!(out.state.read_flag(Flag::Of));
    }

    #[test]
    fn division_and_fault() {
        let s = state_with(&[(Gpr::Rax, 100), (Gpr::Rdx, 0), (Gpr::Rcx, 7)]);
        let out = run_text("divq rcx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 14);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), 2);
        assert!(out.faults.is_clean());

        let s = state_with(&[(Gpr::Rax, 100), (Gpr::Rdx, 0), (Gpr::Rcx, 0)]);
        let out = run_text("divq rcx", &s);
        assert_eq!(out.faults.sigfpe, 1);
        assert_eq!(
            out.state.read_gpr64(Gpr::Rax),
            100,
            "faulting divide leaves state unchanged"
        );
    }

    #[test]
    fn shifts() {
        let s = state_with(&[(Gpr::Rcx, 0x0000_0000_9000_0001)]);
        let out = run_text("shlq 32, rcx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rcx), 0x9000_0001_0000_0000);

        let s = state_with(&[(Gpr::Rsi, 0x9000_0001_0000_0000)]);
        let out = run_text("shrq 32, rsi", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rsi), 0x9000_0001);

        let s = state_with(&[(Gpr::Rax, 0x8000_0000_0000_0000)]);
        let out = run_text("sarq 63, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), u64::MAX);

        // Shift count is masked to 5 bits for 32-bit operands.
        let s = state_with(&[(Gpr::Rax, 0xff)]);
        let out = run_text("shll 32, eax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0xff);

        // Shift by CL.
        let s = state_with(&[(Gpr::Rax, 1), (Gpr::Rcx, 4)]);
        let out = run_text("shlq cl, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 16);
    }

    #[test]
    fn rotates() {
        let s = state_with(&[(Gpr::Rax, 0x8000_0000_0000_0001)]);
        let out = run_text("rolq 1, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 3);
        let s = state_with(&[(Gpr::Rax, 0x3)]);
        let out = run_text("rorq 1, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0x8000_0000_0000_0001);
    }

    #[test]
    fn bit_instructions() {
        let s = state_with(&[(Gpr::Rdi, 0b1011_0100)]);
        let out = run_text("popcntq rdi, rax\nbsfq rdi, rbx\nbsrq rdi, rcx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 4);
        assert_eq!(out.state.read_gpr64(Gpr::Rbx), 2);
        assert_eq!(out.state.read_gpr64(Gpr::Rcx), 7);

        let s = state_with(&[(Gpr::Rdi, 0x0102_0304)]);
        let out = run_text("bswapl edi", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rdi), 0x0403_0201);
    }

    #[test]
    fn sign_extension_family() {
        let s = state_with(&[(Gpr::Rax, 0xffff_ffff_8000_0000u64 & 0xffff_ffff)]);
        let out = run_text("cltq", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 0xffff_ffff_8000_0000);

        let s = state_with(&[(Gpr::Rax, 0x8000_0000_0000_0000)]);
        let out = run_text("cqto", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rdx), u64::MAX);

        let s = state_with(&[(Gpr::Rcx, 0xffff_ffff)]);
        let out = run_text("movslq ecx, rcx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rcx), u64::MAX);
    }

    #[test]
    fn memory_load_store_and_lea() {
        let mut s = state_with(&[(Gpr::Rsi, 0x1000), (Gpr::Rcx, 2), (Gpr::Rdi, 3)]);
        s.memory.poke_wide(0x1008, 123, 4);
        let out = run_text(
            "movl (rsi,rcx,4), eax\nimull edi, eax\nmovl eax, (rsi,rcx,4)\nleaq 4(rsi,rcx,4), rbx",
            &s,
        );
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 369);
        assert_eq!(out.state.memory.peek_wide(0x1008, 4), 369);
        assert_eq!(out.state.read_gpr64(Gpr::Rbx), 0x100c);
        assert!(out.faults.is_clean());
    }

    #[test]
    fn out_of_sandbox_access_faults() {
        let s = state_with(&[(Gpr::Rsi, 0x1000)]);
        let out = run_text("movq (rsi), rax", &s);
        assert_eq!(out.faults.sigsegv, 1);
        assert_eq!(
            out.state.read_gpr64(Gpr::Rax),
            0,
            "faulting load produces zero"
        );
        let out = run_text("movq rax, (rsi)", &s);
        assert_eq!(out.faults.sigsegv, 1);
    }

    #[test]
    fn undefined_register_reads_counted() {
        let s = state_with(&[(Gpr::Rdi, 1)]);
        // rbx was never defined.
        let out = run_text("addq rbx, rdi", &s);
        assert_eq!(out.faults.undef, 1);
        // Flags undefined before adc.
        let out = run_text("adcq rdi, rdi", &s);
        assert!(out.faults.undef >= 1);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut s = state_with(&[(Gpr::Rsp, 0x2000), (Gpr::Rdi, 77)]);
        s.memory.mark_valid(0x1ff8, 8);
        let out = run_text("pushq rdi\npopq rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 77);
        assert_eq!(out.state.read_gpr64(Gpr::Rsp), 0x2000);
        assert!(out.faults.is_clean());
    }

    #[test]
    fn xchg_swaps() {
        let s = state_with(&[(Gpr::Rax, 1), (Gpr::Rbx, 2)]);
        let out = run_text("xchgq rax, rbx", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 2);
        assert_eq!(out.state.read_gpr64(Gpr::Rbx), 1);
    }

    #[test]
    fn montgomery_rewrite_matches_reference() {
        // Figure 1 (right): c1:c0 := np * mh:ml + c1 + c0
        let text = "
            shlq 32, rcx
            mov edx, edx
            xorq rdx, rcx
            movq rcx, rax
            mulq rsi
            addq r8, rdi
            adcq 0, rdx
            addq rdi, rax
            adcq 0, rdx
            movq rdx, r8
            movq rax, rdi
        ";
        let cases = [
            (
                0x1234_5678_9abc_def0u64,
                0xdead_beefu64,
                0xcafe_babeu64,
                7u64,
                9u64,
            ),
            (
                u64::MAX,
                u32::MAX as u64,
                u32::MAX as u64,
                u64::MAX,
                u64::MAX,
            ),
            (0, 0, 0, 0, 0),
            (1, 0, 1, 0xffff_ffff_ffff_ffff, 1),
        ];
        for (np, mh, ml, c0, c1) in cases {
            let s = state_with(&[
                (Gpr::Rsi, np),
                (Gpr::Rcx, mh),
                (Gpr::Rdx, ml),
                (Gpr::Rdi, c0),
                (Gpr::R8, c1),
            ]);
            let out = run_text(text, &s);
            let expected = u128::from(np) * ((u128::from(mh) << 32) | u128::from(ml))
                + u128::from(c1)
                + u128::from(c0);
            assert_eq!(out.state.read_gpr64(Gpr::Rdi), expected as u64, "low half");
            assert_eq!(
                out.state.read_gpr64(Gpr::R8),
                (expected >> 64) as u64,
                "high half"
            );
            assert!(out.faults.is_clean());
        }
    }

    #[test]
    fn sse_saxpy_rewrite() {
        // Figure 14 (bottom): x[i..i+4] = a * x[i..i+4] + y[i..i+4] with
        // 16-bit lane multiplies (as in the paper's pmullw rewrite) — here
        // exercised with small values where 16-bit and 32-bit agree.
        let text = "
            movd edi, xmm0
            shufps 0, xmm0, xmm0
            movups (rsi,rcx,4), xmm1
            pmullw xmm1, xmm0
            movups (rdx,rcx,4), xmm1
            paddw xmm1, xmm0
            movups xmm0, (rsi,rcx,4)
        ";
        let mut s = state_with(&[
            (Gpr::Rdi, 3),
            (Gpr::Rsi, 0x1000),
            (Gpr::Rdx, 0x2000),
            (Gpr::Rcx, 0),
        ]);
        for i in 0..4u64 {
            s.memory.poke_wide(0x1000 + 4 * i, 10 + i, 4);
            s.memory.poke_wide(0x2000 + 4 * i, 100 + i, 4);
        }
        let out = run_text(text, &s);
        for i in 0..4u64 {
            let expected = 3 * (10 + i) + (100 + i);
            assert_eq!(
                out.state.memory.peek_wide(0x1000 + 4 * i, 4),
                expected,
                "lane {}",
                i
            );
        }
        assert!(out.faults.is_clean());
    }

    #[test]
    fn pshufd_broadcast() {
        let mut s = MachineState::new();
        s.write_xmm(
            stoke_x86::Xmm(1),
            [0x0000_0002_0000_0001, 0x0000_0004_0000_0003],
        );
        let out = run_text("pshufd 0, xmm1, xmm2", &s);
        assert_eq!(
            out.state.read_xmm(stoke_x86::Xmm(2)),
            [0x0000_0001_0000_0001, 0x0000_0001_0000_0001]
        );
    }

    #[test]
    fn punpck_interleaves() {
        let mut s = MachineState::new();
        s.write_xmm(stoke_x86::Xmm(0), [0x0000_0002_0000_0001, 0]);
        s.write_xmm(stoke_x86::Xmm(1), [0x0000_000b_0000_000a, 0]);
        let out = run_text("punpckldq xmm1, xmm0", &s);
        assert_eq!(
            out.state.read_xmm(stoke_x86::Xmm(0)),
            [0x0000_000a_0000_0001, 0x0000_000b_0000_0002]
        );
        let mut s = MachineState::new();
        s.write_xmm(stoke_x86::Xmm(0), [1, 2]);
        s.write_xmm(stoke_x86::Xmm(1), [3, 4]);
        let out = run_text("punpcklqdq xmm1, xmm0", &s);
        assert_eq!(out.state.read_xmm(stoke_x86::Xmm(0)), [1, 3]);
    }

    #[test]
    fn bsf_of_zero_leaves_dst() {
        let s = state_with(&[(Gpr::Rdi, 0), (Gpr::Rax, 55)]);
        let out = run_text("bsfq rdi, rax", &s);
        assert_eq!(out.state.read_gpr64(Gpr::Rax), 55);
        assert!(out.state.read_flag(Flag::Zf));
    }
}
