//! A dependency-aware superscalar timing model.
//!
//! The paper approximates runtime by the *sum* of instruction latencies
//! (Equation 13) and observes (Figure 3) that the approximation is good
//! except for codes with unusually high or low instruction-level
//! parallelism at the micro-op level. This module provides the "actual
//! runtime" side of that comparison: a small out-of-order issue model that
//! schedules each instruction as soon as its operands are ready, subject
//! to an issue-width constraint, and reports the resulting critical-path
//! cycle count.
//!
//! The model is also used to re-rank the lowest-cost rewrites found by the
//! search (§4.2: "recomputing perf(·) using the slower JIT compilation
//! method as a postprocessing step" — our substitute for native execution).

use stoke_x86::{Flag, Gpr, Instruction, Program, Xmm};

/// Configuration of the issue model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// Maximum number of instructions issued per cycle.
    pub issue_width: u32,
    /// Additional latency charged to loads (address generation + cache hit).
    pub load_latency: u32,
    /// Additional latency charged to stores.
    pub store_latency: u32,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            issue_width: 4,
            load_latency: 4,
            store_latency: 1,
        }
    }
}

impl TimingModel {
    /// Estimate the number of cycles the program takes to execute once,
    /// accounting for data dependencies between instructions and the issue
    /// width, but not for branch effects (programs are loop-free) or cache
    /// misses (working sets are tiny).
    pub fn cycles(&self, program: &Program) -> u64 {
        self.cycles_instrs(program.instrs())
    }

    /// See [`TimingModel::cycles`].
    pub fn cycles_instrs(&self, instrs: &[Instruction]) -> u64 {
        // Completion time of the most recent writer of each location.
        let mut gpr_ready = [0u64; 16];
        let mut xmm_ready = [0u64; 16];
        let mut flag_ready = [0u64; 5];
        let mut mem_ready = 0u64; // last store completion
        let mut last_store = 0u64;

        let mut finish_max = 0u64;
        for (idx, instr) in instrs.iter().enumerate() {
            // Operands must be ready.
            let mut ready = 0u64;
            for r in instr.gpr_uses() {
                ready = ready.max(gpr_ready[r.parent().index()]);
            }
            for x in instr.xmm_uses() {
                ready = ready.max(xmm_ready[x.index()]);
            }
            for f in instr.flag_uses() {
                ready = ready.max(flag_ready[f.index()]);
            }
            if instr.loads() {
                // Loads must wait for earlier stores (no alias analysis).
                ready = ready.max(mem_ready);
            }
            if instr.stores() {
                ready = ready.max(last_store);
            }
            // Issue-width constraint: at most `issue_width` instructions
            // can begin per cycle, in program order.
            let issue_floor = idx as u64 / u64::from(self.issue_width);
            let start = ready.max(issue_floor);

            let mut latency = u64::from(instr.opcode().latency().max(1));
            if instr.loads() {
                latency += u64::from(self.load_latency);
            }
            if instr.stores() {
                latency += u64::from(self.store_latency);
            }
            let finish = start + latency;
            finish_max = finish_max.max(finish);

            for r in instr.gpr_defs() {
                gpr_ready[r.parent().index()] = finish;
            }
            for x in instr.xmm_defs() {
                xmm_ready[x.index()] = finish;
            }
            for f in instr.flag_defs() {
                flag_ready[f.index()] = finish;
            }
            if instr.stores() {
                mem_ready = finish;
                last_store = finish;
            }
        }
        let _ = (Gpr::ALL, Xmm::ALL, Flag::ALL); // (documentation of the location space)
        finish_max
    }
}

/// Estimate cycles with the default model.
pub fn estimate_cycles(program: &Program) -> u64 {
    TimingModel::default().cycles(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Program;

    #[test]
    fn dependent_chain_slower_than_independent() {
        // Four dependent adds form a chain of length 4...
        let chain: Program = "
            addq rbx, rax
            addq rbx, rax
            addq rbx, rax
            addq rbx, rax
        "
        .parse()
        .unwrap();
        // ...while four independent adds can issue in parallel.
        let parallel: Program = "
            addq rbx, rax
            addq rbx, rcx
            addq rbx, rdx
            addq rbx, rsi
        "
        .parse()
        .unwrap();
        let t = TimingModel::default();
        assert!(t.cycles(&chain) > t.cycles(&parallel));
        // Both have identical static latency sums (Figure 3's outliers).
        assert_eq!(chain.static_latency(), parallel.static_latency());
    }

    #[test]
    fn loads_cost_more_than_register_moves() {
        let mem: Program = "movq -8(rsp), rdi\naddq rdi, rax".parse().unwrap();
        let reg: Program = "movq rbx, rdi\naddq rdi, rax".parse().unwrap();
        let t = TimingModel::default();
        assert!(t.cycles(&mem) > t.cycles(&reg));
    }

    #[test]
    fn store_load_dependency_is_respected() {
        let p: Program = "
            movq rdi, -8(rsp)
            movq -8(rsp), rax
            addq rax, rbx
        "
        .parse()
        .unwrap();
        let q: Program = "
            movq rdi, rax
            addq rax, rbx
        "
        .parse()
        .unwrap();
        let t = TimingModel::default();
        assert!(
            t.cycles(&p) > t.cycles(&q),
            "stack round trip must be slower"
        );
    }

    #[test]
    fn empty_program_is_free() {
        assert_eq!(estimate_cycles(&Program::new()), 0);
    }

    #[test]
    fn issue_width_bounds_throughput() {
        // 16 independent single-cycle instructions on a 4-wide machine need
        // at least 4 cycles to issue.
        let text = (0..16)
            .map(|i| format!("movq {}, r{}", i, 8 + (i % 8)))
            .collect::<Vec<_>>()
            .join("\n");
        let p: Program = text.parse().unwrap();
        let t = TimingModel::default();
        assert!(t.cycles(&p) >= 4);
    }
}
