//! A dynamic taint oracle: shadow-propagation of secret bits alongside
//! concrete execution.
//!
//! This is the ground truth the static taint analysis in `stoke-analysis`
//! is tested against: for one concrete input, every location the oracle
//! marks tainted at exit must also be tainted in the static exit fact
//! (the static analysis over-approximates every dynamic flow). Unlike the
//! static side, the oracle tracks tainted memory *per byte*, so it is
//! strictly more precise on stores and loads.
//!
//! The propagation rule mirrors the static transfer function: an
//! instruction's results are tainted iff any value it reads (registers,
//! flags, loaded bytes) is tainted, with the `xor r, r` / `sub r, r`
//! zeroing idiom treated as taint-free because its result is a constant.

use std::collections::BTreeSet;

use crate::exec::{Cpu, Emulator, Outcome};
use crate::state::MachineState;
use stoke_x86::flow::LocSet;
use stoke_x86::{AluOp, Flag, Gpr, Instruction, Mem, Opcode, Operand, Width, Xmm};

/// Shadow taint bits for every architectural location plus tainted memory
/// bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintState {
    gprs: [bool; 16],
    xmms: [bool; 16],
    flags: [bool; 5],
    mem: BTreeSet<u64>,
}

impl TaintState {
    /// A taint state with exactly the given locations marked secret.
    pub fn new(secrets: &LocSet) -> TaintState {
        let mut t = TaintState::default();
        for g in &secrets.gprs {
            t.gprs[g.index()] = true;
        }
        for x in &secrets.xmms {
            t.xmms[x.0 as usize] = true;
        }
        for f in &secrets.flags {
            t.flags[*f as usize] = true;
        }
        t
    }

    /// Whether the full 64-bit register may hold a secret-derived value.
    pub fn gpr(&self, g: Gpr) -> bool {
        self.gprs[g.index()]
    }

    /// Whether the SSE register may hold a secret-derived value.
    pub fn xmm(&self, x: Xmm) -> bool {
        self.xmms[x.0 as usize]
    }

    /// Whether the status flag may hold a secret-derived value.
    pub fn flag(&self, f: Flag) -> bool {
        self.flags[f as usize]
    }

    /// The addresses of memory bytes holding secret-derived values.
    pub fn mem(&self) -> &BTreeSet<u64> {
        &self.mem
    }

    /// The tainted registers and flags as a [`LocSet`] (memory excluded).
    pub fn tainted_locs(&self) -> LocSet {
        let mut out = LocSet::new();
        for (i, tainted) in self.gprs.iter().enumerate() {
            if *tainted {
                out.gprs.insert(Gpr::from_index(i));
            }
        }
        for (i, tainted) in self.xmms.iter().enumerate() {
            if *tainted {
                out.xmms.insert(Xmm(i as u8));
            }
        }
        for f in Flag::ALL {
            if self.flags[f as usize] {
                out.flags.insert(f);
            }
        }
        out
    }

    fn any_mem_byte(&self, addr: u64, len: u64) -> bool {
        (0..len).any(|i| self.mem.contains(&addr.wrapping_add(i)))
    }

    fn set_mem_bytes(&mut self, addr: u64, len: u64, tainted: bool) {
        for i in 0..len {
            let a = addr.wrapping_add(i);
            if tainted {
                self.mem.insert(a);
            } else {
                self.mem.remove(&a);
            }
        }
    }
}

/// The effective address of a memory operand under `state`, mirroring the
/// emulator's own address computation.
fn mem_addr(state: &MachineState, m: &Mem) -> u64 {
    let base = m.base.map_or(0, |b| state.read_gpr64(b));
    let index = m.index.map_or(0, |i| state.read_gpr64(i));
    base.wrapping_add(index.wrapping_mul(m.scale.factor()))
        .wrapping_add(m.disp as i64 as u64)
}

/// The `(address, length)` of the memory this instruction loads from,
/// evaluated against the pre-instruction `state`. `None` when it does not
/// load.
fn load_span(state: &MachineState, instr: &Instruction) -> Option<(u64, u64)> {
    if !instr.loads() {
        return None;
    }
    if matches!(instr.opcode(), Opcode::Pop) {
        return Some((state.read_gpr64(Gpr::Rsp), 8));
    }
    let m = instr.mem_operand()?;
    Some((mem_addr(state, &m), instr.mem_width_bytes()?))
}

/// The `(address, length)` of the memory this instruction stores to,
/// evaluated against the pre-instruction `state`.
fn store_span(state: &MachineState, instr: &Instruction) -> Option<(u64, u64)> {
    if !instr.stores() {
        return None;
    }
    if matches!(instr.opcode(), Opcode::Push) {
        return Some((state.read_gpr64(Gpr::Rsp).wrapping_sub(8), 8));
    }
    let m = instr.mem_operand()?;
    Some((mem_addr(state, &m), instr.mem_width_bytes()?))
}

fn is_zeroing_idiom(instr: &Instruction) -> bool {
    if !matches!(
        instr.opcode(),
        Opcode::Alu(AluOp::Xor, _) | Opcode::Alu(AluOp::Sub, _)
    ) {
        return false;
    }
    match instr.operands() {
        [Operand::Reg(a), Operand::Reg(b)] => a == b,
        _ => false,
    }
}

/// Run `instrs` from `input`, shadow-propagating taint from the `secrets`
/// entry locations. Returns the concrete [`Outcome`] (bit-identical to
/// [`run_instrs`](crate::run_instrs)) and the final taint state.
pub fn run_tainted<'a>(
    instrs: impl IntoIterator<Item = &'a Instruction>,
    input: &MachineState,
    secrets: &LocSet,
) -> (Outcome, TaintState) {
    let mut emu = Emulator::start(input);
    let mut taint = TaintState::new(secrets);
    for instr in instrs {
        // Decide taint of the instruction's inputs against the
        // pre-instruction state (addresses use pre-state registers).
        let mut tainted = !is_zeroing_idiom(instr)
            && (instr.gpr_uses().iter().any(|r| taint.gpr(r.parent()))
                || instr.xmm_uses().iter().any(|x| taint.xmm(*x))
                || instr.flag_uses().iter().any(|f| taint.flag(*f)));
        let load = load_span(&emu.state, instr);
        let store = store_span(&emu.state, instr);
        if let Some((addr, len)) = load {
            tainted |= !is_zeroing_idiom(instr) && taint.any_mem_byte(addr, len);
        }
        emu.execute(instr);
        // Propagate to the outputs. Narrow (8/16-bit) register writes
        // merge into the parent, so old taint survives there; everything
        // else is a strong update. Stores update bytes strongly too —
        // even when the concrete store faulted and was discarded, which
        // only ever *adds* dynamic taint and so preserves the
        // "dynamic is under static" invariant the property test checks.
        for r in instr.gpr_defs() {
            let g = r.parent();
            match r.width() {
                Width::B | Width::W => taint.gprs[g.index()] |= tainted,
                _ => taint.gprs[g.index()] = tainted,
            }
        }
        for x in instr.xmm_defs() {
            taint.xmms[x.0 as usize] = tainted;
        }
        for f in instr.flag_defs() {
            taint.flags[*f as usize] = tainted;
        }
        if let Some((addr, len)) = store {
            taint.set_mem_bytes(addr, len, tainted);
        }
    }
    (emu.finish(), taint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Program;

    fn run(text: &str, secrets: &[Gpr]) -> (Outcome, TaintState) {
        let p: Program = text.parse().unwrap();
        let mut input = MachineState::new();
        for (i, g) in [Gpr::Rdi, Gpr::Rsi, Gpr::Rcx].into_iter().enumerate() {
            input.set_gpr64(g, 0x10 + i as u64);
        }
        input.set_gpr64(Gpr::Rsp, 0x8000);
        input.memory.mark_valid(0x7f00, 0x200);
        run_tainted(
            p.iter(),
            &input,
            &LocSet::from_gprs(secrets.iter().copied()),
        )
    }

    #[test]
    fn register_flow_is_tracked() {
        let (_, t) = run("movq rdi, rax\naddq rsi, rax\nmovq rsi, rdi", &[Gpr::Rdi]);
        assert!(t.gpr(Gpr::Rax));
        assert!(t.flag(Flag::Zf), "add's flags are secret-derived");
        assert!(!t.gpr(Gpr::Rdi), "overwritten with a public value");
    }

    #[test]
    fn zeroing_idiom_clears() {
        let (_, t) = run("movq rdi, rax\nxorq rax, rax", &[Gpr::Rdi]);
        assert!(!t.gpr(Gpr::Rax));
        assert!(!t.flag(Flag::Zf));
    }

    #[test]
    fn memory_bytes_are_tracked_precisely() {
        let (out, t) = run("movq rdi, -8(rsp)\nmovq rsi, -16(rsp)", &[Gpr::Rdi]);
        assert!(out.faults.is_clean());
        assert!(t.any_mem_byte(0x8000 - 8, 8), "secret store taints bytes");
        assert!(!t.any_mem_byte(0x8000 - 16, 8), "public store stays clean");
        let (_, t) = run(
            "movq rdi, -8(rsp)\nmovq rsi, -8(rsp)\nmovq -8(rsp), rax",
            &[Gpr::Rdi],
        );
        assert!(
            !t.gpr(Gpr::Rax),
            "strong update: public store scrubs the bytes"
        );
    }

    #[test]
    fn push_pop_round_trip() {
        let (out, t) = run("pushq rdi\npopq rax", &[Gpr::Rdi]);
        assert!(out.faults.is_clean());
        assert!(t.gpr(Gpr::Rax));
        // The per-instruction rule taints every output once any input is
        // tainted, so push's rsp update is (over-)tainted too — exactly
        // as in the static analysis.
        assert!(t.gpr(Gpr::Rsp));
    }

    #[test]
    fn narrow_write_merges() {
        let (_, t) = run("movq rdi, rdx\ncmpq rsi, rsi\nsete dl", &[Gpr::Rdi]);
        assert!(t.gpr(Gpr::Rdx), "old taint survives a byte write");
        let locs = t.tainted_locs();
        assert!(locs.gprs.contains(&Gpr::Rdx));
    }

    #[test]
    fn outcome_matches_untainted_run() {
        let text = "movq rdi, rax\nimulq rsi, rax\npushq rax\npopq rdx";
        let p: Program = text.parse().unwrap();
        let mut input = MachineState::new();
        input.set_gpr64(Gpr::Rdi, 6);
        input.set_gpr64(Gpr::Rsi, 7);
        input.set_gpr64(Gpr::Rsp, 0x8000);
        let (out, _) = run_tainted(p.iter(), &input, &LocSet::new());
        let reference = crate::run(&p, &input);
        assert_eq!(out.state, reference.state);
        assert_eq!(out.faults, reference.faults);
    }
}
