//! Property-based tests for the emulator: instruction semantics agree with
//! native Rust arithmetic for arbitrary inputs, and the sandbox never
//! leaks writes outside its valid ranges.

use proptest::prelude::*;
use stoke_emu::{run, MachineState};
use stoke_x86::{Flag, Gpr, Program};

fn state2(a: u64, b: u64) -> MachineState {
    let mut s = MachineState::new();
    s.set_gpr64(Gpr::Rdi, a);
    s.set_gpr64(Gpr::Rsi, b);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// 64-bit add/sub/and/or/xor agree with Rust's wrapping arithmetic and
    /// the carry/zero flags agree with the mathematical definitions.
    #[test]
    fn alu_semantics_match_native(a in any::<u64>(), b in any::<u64>()) {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let out = run(&p, &state2(a, b));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), a.wrapping_add(b));
        prop_assert_eq!(out.state.read_flag(Flag::Cf), a.checked_add(b).is_none());
        prop_assert_eq!(out.state.read_flag(Flag::Zf), a.wrapping_add(b) == 0);

        let p: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        let out = run(&p, &state2(a, b));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), a.wrapping_sub(b));
        prop_assert_eq!(out.state.read_flag(Flag::Cf), a < b);

        let p: Program = "movq rdi, rax\nxorq rsi, rax\nandq rsi, rax".parse().unwrap();
        let out = run(&p, &state2(a, b));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), (a ^ b) & b);
    }

    /// The 128-bit widening multiply splits the full product across
    /// rdx:rax.
    #[test]
    fn widening_multiply_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p: Program = "movq rdi, rax\nmulq rsi".parse().unwrap();
        let out = run(&p, &state2(a, b));
        let full = u128::from(a) * u128::from(b);
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), full as u64);
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rdx), (full >> 64) as u64);
        prop_assert_eq!(out.state.read_flag(Flag::Cf), (full >> 64) != 0);
    }

    /// popcnt / bsf / bsr match the standard library bit operations.
    #[test]
    fn bit_instructions_match_std(a in 1u64..) {
        let p: Program = "popcntq rdi, rax\nbsfq rdi, rbx\nbsrq rdi, rcx".parse().unwrap();
        let out = run(&p, &state2(a, 0));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), u64::from(a.count_ones()));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rbx), u64::from(a.trailing_zeros()));
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rcx), u64::from(63 - a.leading_zeros()));
    }

    /// Shift-by-register masks the count exactly like the hardware (mod 64
    /// for 64-bit operands, mod 32 for 32-bit operands).
    #[test]
    fn shift_counts_are_masked(a in any::<u64>(), count in any::<u8>()) {
        let p: Program = "movq rsi, rcx\nmovq rdi, rax\nshlq cl, rax\nmovl edi, ebx\nshll cl, ebx"
            .parse()
            .unwrap();
        let out = run(&p, &state2(a, u64::from(count)));
        let c64 = u32::from(count) & 63;
        let c32 = u32::from(count) & 31;
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), if c64 == 0 { a } else { a << c64 });
        prop_assert_eq!(
            out.state.read_gpr64(Gpr::Rbx),
            u64::from(if c32 == 0 { a as u32 } else { (a as u32) << c32 })
        );
    }

    /// Conditional moves select exactly one of the two values and faults
    /// never occur on register-only programs.
    #[test]
    fn cmov_selects_min(a in any::<u64>(), b in any::<u64>()) {
        // min(a, b) via cmp + cmovb.
        let p: Program = "movq rsi, rax\ncmpq rsi, rdi\ncmovbq rdi, rax".parse().unwrap();
        let out = run(&p, &state2(a, b));
        prop_assert!(out.faults.is_clean());
        prop_assert_eq!(out.state.read_gpr64(Gpr::Rax), a.min(b));
    }

    /// Out-of-sandbox stores are discarded: memory outside the valid
    /// ranges is never modified, whatever address the program computes.
    #[test]
    fn sandbox_contains_stray_stores(addr in any::<u64>(), value in any::<u64>()) {
        let mut s = state2(addr, value);
        s.memory.poke_wide(0x1000, 0xdead_beef, 4);
        let p: Program = "movq rsi, (rdi)".parse().unwrap();
        let out = run(&p, &s);
        // The only valid bytes are the four at 0x1000; they are unchanged
        // unless the store legally landed inside them.
        if !(0x0ff9..=0x1003).contains(&addr) {
            prop_assert_eq!(out.state.memory.peek_wide(0x1000, 4), 0xdead_beef);
            prop_assert_eq!(out.faults.sigsegv, 1);
        }
    }
}
