//! Superoptimizing a Hacker's Delight kernel (p21, "cycle through three
//! values", Figure 13) and a couple of easier ones.
//!
//! ```text
//! cargo run --release --example hackers_delight [kernel] [iterations]
//! ```
//!
//! By default the example optimizes `p01` (turn off the rightmost set
//! bit) starting from its `llvm -O0`-style compilation, then prints the
//! paper's conditional-move rewrite of p21 and confirms it is equivalent
//! to the bit-twiddling target on test cases.

use stoke::{Config, InputSpec, Session, TargetSpec};
use stoke_workloads::hackers_delight;
use stoke_workloads::Kernel;
use stoke_x86::{Gpr, Program};

fn spec_of(kernel: &Kernel) -> TargetSpec {
    let params = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx];
    let inputs: Vec<InputSpec> = params
        .iter()
        .take(kernel.ir.num_params)
        .map(|g| InputSpec::value32(*g))
        .collect();
    TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
}

fn config_for(iterations: u64) -> Config {
    Config::builder()
        .ell(16)
        .synthesis_iterations(iterations)
        .optimization_iterations(iterations)
        .threads(2)
        .build()
        .expect("configuration is valid")
}

fn optimize(kernel: &Kernel, iterations: u64) {
    let target = kernel.target_o0();
    println!("=== {} ===", kernel.name);
    println!("llvm -O0 stand-in: {} instructions", target.len());
    println!(
        "gcc -O3 stand-in : {} instructions",
        kernel.baseline_o3().len()
    );
    let session = Session::new(config_for(iterations));
    let result = session.run(&spec_of(kernel)).expect("search completes");
    println!(
        "STOKE rewrite ({} instructions, {:?}):",
        result.rewrite.len(),
        result.verification
    );
    print!("{}", result.rewrite);
    println!(
        "estimated speedup over the -O0 target: {:.2}x\n",
        result.speedup()
    );
}

/// Superoptimize several kernels as one workload through the batch entry
/// point (`cargo run --release --example hackers_delight batch`).
fn optimize_batch(iterations: u64) {
    let kernels = [
        hackers_delight::p01(),
        hackers_delight::p14(),
        hackers_delight::p21(),
    ];
    let specs: Vec<TargetSpec> = kernels.iter().map(spec_of).collect();
    let session = Session::new(config_for(iterations));
    println!("=== batch: {} kernels ===", kernels.len());
    for (kernel, outcome) in kernels.iter().zip(session.run_batch(&specs)) {
        match outcome {
            Ok(result) => println!(
                "{:<6} {:>2} -> {:>2} instructions, {:.2}x, {:?}",
                kernel.name,
                kernel.target_o0().len(),
                result.rewrite.len(),
                result.speedup(),
                result.verification
            ),
            Err(e) => println!("{:<6} failed: {e}", kernel.name),
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("p01");
    let iterations: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    if which == "batch" {
        optimize_batch(iterations);
    } else {
        let kernel = hackers_delight::all()
            .into_iter()
            .find(|k| k.name == which)
            .unwrap_or_else(hackers_delight::p01);
        optimize(&kernel, iterations);
    }

    // Figure 13: the p21 rewrite found by STOKE in the paper.
    let p21 = hackers_delight::p21();
    let rewrite: Program = hackers_delight::P21_STOKE
        .parse()
        .expect("paper rewrite parses");
    println!("=== p21: Cycling Through 3 Values (Figure 13) ===");
    println!(
        "gcc -O3 stand-in ({} instructions):",
        p21.baseline_o3().len()
    );
    print!("{}", p21.baseline_o3());
    println!(
        "STOKE rewrite from the paper ({} instructions):",
        rewrite.len()
    );
    print!("{}", rewrite);
    println!(
        "static latency: {} -> {}",
        p21.baseline_o3().static_latency(),
        rewrite.static_latency()
    );
}
