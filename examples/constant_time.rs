//! Security-aware search: how the static analyses keep STOKE from
//! "optimizing" a constant-time kernel into a faster but leaky one.
//!
//! ```text
//! cargo run --release --example constant_time
//! ```
//!
//! The target computes `rax = rsi << (rdi & 0x20)` branchlessly with a
//! constant shift and a `cmov` — the classic constant-time discipline:
//! its latency never depends on the secret selector in `rdi`. A plain
//! STOKE search discovers that `shlq cl, rax` with `cl = rdi` computes
//! the same function in fewer cycles (the interface masks `rdi` to
//! `{0, 0x20}`) — and a variable shift whose count is secret is a timing
//! side channel on many microarchitectures.
//!
//! Run once with the paper's cost model, once with the constant-time
//! penalty and the relative-leakage verifier; assert that the first
//! rewrite is flagged by the analysis and the second is clean, still
//! correct, and introduces no observation channel the target lacks.
//! CI runs this example as a smoke gate, so the asserts are the spec.

use stoke::{Config, CostModelSpec, InputSpec, Session, StokeResult, TargetSpec, VerifierSpec};
use stoke_analysis::{constant_time_violations, introduces_new_leaks};
use stoke_x86::flow::LocSet;
use stoke_x86::opcode::{Cond, ShiftOp};
use stoke_x86::{Gpr, Opcode, Program, Width};

fn kernel() -> TargetSpec {
    // rax = rsi << 32 when bit 5 of the (secret) selector is set, else rsi.
    let target: Program = "
        movq rsi, rax
        movq rsi, rdx
        shlq 32, rdx
        testq 32, rdi
        cmovneq rdx, rax
    "
    .parse()
    .expect("target parses");
    TargetSpec::new(
        target,
        vec![
            InputSpec::value_masked(Gpr::Rdi, 0x20).secret(),
            InputSpec::value64(Gpr::Rsi),
        ],
        LocSet::from_gprs([Gpr::Rax]),
    )
}

fn config() -> Config {
    // A pool focused on the moves the kernel needs keeps the search (and
    // this CI smoke gate) fast and deterministic; everything else is the
    // stock pipeline.
    Config::builder()
        .ell(8)
        .num_testcases(16)
        .threads(1)
        .synthesis_iterations(30_000)
        .optimization_iterations(60_000)
        .opcode_pool(vec![
            Opcode::Mov(Width::Q),
            Opcode::Shift(ShiftOp::Shl, Width::Q),
            Opcode::Test(Width::Q),
            Opcode::Cmov(Cond::Ne, Width::Q),
        ])
        .build()
        .expect("configuration is valid")
}

fn run(config: Config, spec: &TargetSpec) -> StokeResult {
    Session::new(config).run(spec).expect("search completes")
}

fn check_correct(spec: &TargetSpec, result: &StokeResult) {
    let fresh = stoke::generate_testcases(spec, 32, 0xC0FFEE);
    let mut cf = stoke::CostFn::new(config(), fresh, 0);
    let instrs: Vec<_> = result.rewrite.iter().cloned().collect();
    assert_eq!(cf.eq_prime(&instrs), 0, "rewrite fails fresh test cases");
}

fn main() {
    let spec = kernel();
    let secrets = spec.secret_inputs();
    println!("=== target (constant time) ===");
    print!("{}", spec.program);
    assert!(
        constant_time_violations(spec.program.iter(), &secrets).is_empty(),
        "the target itself must be constant time"
    );

    // 1. The paper's pipeline: fastest correct-on-the-interface rewrite
    //    wins, and that rewrite leaks the selector through a variable
    //    shift count.
    let plain = run(config(), &spec);
    println!("\n=== plain PaperCost rewrite ===");
    print!("{}", plain.rewrite);
    let violations = constant_time_violations(plain.rewrite.iter(), &secrets);
    for v in &violations {
        println!("flagged: instruction {} — {}", v.index, v.kind.describe());
    }
    assert!(
        !violations.is_empty(),
        "the unconstrained search was expected to find the leaky variable-shift rewrite"
    );
    check_correct(&spec, &plain);

    // 2. The security-aware pipeline: the constant-time penalty prices
    //    the leak into the search, and the leakage verifier rejects any
    //    candidate introducing an observation kind the target lacks.
    let mut secured_config = config();
    secured_config.cost_model = CostModelSpec::ConstantTime { penalty: 16.0 };
    secured_config.verifier = VerifierSpec::LeakageCascade;
    secured_config.strip_dead_code = true;
    let secured = run(secured_config, &spec);
    println!("\n=== ConstantTimePenalty + LeakageCheck rewrite ===");
    print!("{}", secured.rewrite);
    println!("verification: {:?}", secured.verification);
    assert!(
        constant_time_violations(secured.rewrite.iter(), &secrets).is_empty(),
        "the security-aware search returned a rewrite with constant-time violations"
    );
    assert!(
        introduces_new_leaks(spec.program.iter(), secured.rewrite.iter(), &secrets).is_empty(),
        "the security-aware rewrite introduces a new observation channel"
    );
    check_correct(&spec, &secured);

    println!(
        "\nplain: {} cycles (leaky) | secured: {} cycles (constant time) | target: {} cycles",
        plain.rewrite_cycles, secured.rewrite_cycles, secured.target_cycles
    );
}
