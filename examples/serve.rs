//! Superoptimization as a service: solve a kernel once, serve it forever.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! Starts an in-process [`Service`], submits the paper's Montgomery
//! multiplication kernel (Figure 1) a hundred times — including through a
//! different register convention — and prints the measured cache hit rate
//! and the cold-search vs cache-hit end-to-end latencies. The point of the
//! rewrite cache: the 99 resubmissions cost microseconds, not searches.

use std::time::{Duration, Instant};
use stoke::{Budget, Config, InputSpec, TargetSpec, TestOnly};
use stoke_serve::{Disposition, ServeConfig, Service};
use stoke_workloads::kernels::MONT_GCC_O3;
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program};

/// The Montgomery kernel under the paper's register convention
/// (rsi=np, ecx=mh, edx=ml, rdi=c0, r8=c1; outputs rdi/r8).
fn montgomery_spec() -> TargetSpec {
    let gcc: Program = MONT_GCC_O3.parse().expect("paper gcc code parses");
    TargetSpec::new(
        gcc,
        vec![
            InputSpec::value64(Gpr::Rsi),
            InputSpec::value32(Gpr::Rcx),
            InputSpec::value32(Gpr::Rdx),
            InputSpec::value64(Gpr::Rdi),
            InputSpec::value64(Gpr::R8),
        ],
        LocSet::from_gprs([Gpr::Rdi, Gpr::R8]),
    )
}

fn main() {
    // A deliberately small search: this example demonstrates the service
    // economics, not search quality. The budget caps a slow runner; the
    // test-case verifier keeps the smoke fast and deterministic.
    let config = Config::builder()
        .ell(30)
        .num_testcases(16)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(2)
        .build()
        .expect("configuration is valid");
    let mut serve = ServeConfig::new(config);
    serve.job_budget = Budget::unlimited().with_wall_clock(Duration::from_secs(120));
    serve.verifier = Some(std::sync::Arc::new(TestOnly));
    let service = Service::start(serve).expect("service starts");

    println!("=== stoke-serve: submit the Montgomery kernel 100 times ===\n");

    // Submission 1: a cold search — the only one that costs anything.
    let t0 = Instant::now();
    let first = service.submit(montgomery_spec());
    let cold = service.wait(first).expect("first job completes");
    let cold_latency = t0.elapsed();
    assert_eq!(cold.disposition, Disposition::ColdSearch);
    let cold_result = cold.result.expect("cold search returns a result");
    println!(
        "cold search : {:?} end to end, {} proposals, verification {:?}",
        cold_latency,
        cold_result.stats.total_proposals(),
        cold_result.verification,
    );

    // Submissions 2..=100: canonically equal, so they are *served*.
    let resubmissions = 99;
    let mut hit_latencies = Vec::with_capacity(resubmissions);
    for _ in 0..resubmissions {
        let t = Instant::now();
        let job = service.submit(montgomery_spec());
        let outcome = service.wait(job).expect("resubmission completes");
        assert_eq!(
            outcome.disposition,
            Disposition::CacheHit,
            "a resubmitted kernel must be served from the cache"
        );
        let result = outcome.result.expect("cache hits always succeed");
        assert_eq!(
            result.stats.total_proposals(),
            0,
            "cache hits do not search"
        );
        hit_latencies.push(t.elapsed());
    }
    hit_latencies.sort();
    let median_hit = hit_latencies[resubmissions / 2];

    // The cache is keyed canonically: the same kernel through a different
    // register convention is still a hit.
    let renamed: Program = MONT_GCC_O3
        .replace("r9", "r15")
        .parse()
        .expect("renamed code parses");
    let spec = TargetSpec::new(
        renamed,
        vec![
            InputSpec::value64(Gpr::Rsi),
            InputSpec::value32(Gpr::Rcx),
            InputSpec::value32(Gpr::Rdx),
            InputSpec::value64(Gpr::Rdi),
            InputSpec::value64(Gpr::R8),
        ],
        LocSet::from_gprs([Gpr::Rdi, Gpr::R8]),
    );
    let job = service.submit(spec);
    let outcome = service.wait(job).expect("renamed submission completes");
    assert_eq!(
        outcome.disposition,
        Disposition::CacheHit,
        "register renaming must not defeat the canonical cache key"
    );
    println!("renamed     : served from the cache through a different register convention");

    let stats = service.shutdown().expect("clean shutdown");
    println!("\nsubmitted {} jobs:", stats.submitted);
    println!("  cold searches : {}", stats.cold_searches);
    println!("  cache hits    : {}", stats.cache_hits);
    println!("  hit rate      : {:.1}%", stats.hit_rate() * 100.0);
    println!("\ncold end-to-end latency   : {cold_latency:?}");
    println!("median cache-hit latency  : {median_hit:?}");
    let speedup = cold_latency.as_secs_f64() / median_hit.as_secs_f64().max(1e-9);
    println!("serving is ~{speedup:.0}x faster than searching");
    assert_eq!(stats.cache_hits, resubmissions as u64 + 1);
}
