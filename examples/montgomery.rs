//! The Montgomery multiplication case study of Figure 1.
//!
//! ```text
//! cargo run --release --example montgomery
//! ```
//!
//! Prints the three codes the paper compares — the `llvm -O0`-style
//! target, the `gcc -O3`-style baseline and the STOKE rewrite — checks
//! them against each other on random inputs, and reports the latency and
//! cycle estimates behind the paper's "16 lines shorter and 1.6x faster"
//! headline.

use stoke::{generate_testcases, Config, CostFn, InputSpec, TargetSpec};
use stoke_emu::TimingModel;
use stoke_workloads::kernels::{montgomery, MONT_GCC_O3, MONT_STOKE};
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program};

fn main() {
    let kernel = montgomery();
    let o0 = kernel.target_o0();
    let o3 = kernel.baseline_o3();
    let gcc: Program = MONT_GCC_O3.parse().expect("paper gcc code parses");
    let stoke_rewrite: Program = MONT_STOKE.parse().expect("paper STOKE code parses");

    println!("=== Montgomery multiplication: c1:c0 := np * mh:ml + c1 + c0 ===\n");
    println!(
        "llvm -O0 stand-in: {} instructions, H = {}",
        o0.len(),
        o0.static_latency()
    );
    println!(
        "gcc -O3 stand-in : {} instructions, H = {}",
        o3.len(),
        o3.static_latency()
    );
    println!(
        "gcc -O3 (paper)  : {} instructions, H = {}",
        gcc.len(),
        gcc.static_latency()
    );
    println!(
        "STOKE   (paper)  : {} instructions, H = {}\n",
        stoke_rewrite.len(),
        stoke_rewrite.static_latency()
    );

    println!("--- STOKE rewrite (Figure 1, right) ---\n{}", stoke_rewrite);

    // Check the paper's rewrite against the paper's gcc code on the
    // paper's own register convention (rsi=np, ecx=mh, edx=ml, rdi=c0,
    // r8=c1; outputs rdi/r8).
    let spec = TargetSpec::new(
        gcc.clone(),
        vec![
            InputSpec::value64(Gpr::Rsi),
            InputSpec::value32(Gpr::Rcx),
            InputSpec::value32(Gpr::Rdx),
            InputSpec::value64(Gpr::Rdi),
            InputSpec::value64(Gpr::R8),
        ],
        LocSet::from_gprs([Gpr::Rdi, Gpr::R8]),
    );
    let suite = generate_testcases(&spec, 64, 1);
    let config = Config::builder().build().expect("defaults are valid");
    let mut cost = CostFn::new(config, suite, gcc.static_latency());
    let instrs: Vec<_> = stoke_rewrite.iter().cloned().collect();
    let eq = cost.eq_prime(&instrs);
    println!(
        "test-case distance between the gcc code and the STOKE rewrite: {}",
        eq
    );
    assert_eq!(
        eq, 0,
        "the two codes must agree on all 64 random test cases"
    );

    let timing = TimingModel::default();
    let gcc_cycles = timing.cycles(&gcc);
    let stoke_cycles = timing.cycles(&stoke_rewrite);
    println!(
        "timing model: gcc -O3 {} cycles, STOKE {} cycles -> {:.2}x (paper reports 1.6x)",
        gcc_cycles,
        stoke_cycles,
        gcc_cycles as f64 / stoke_cycles as f64
    );
}
