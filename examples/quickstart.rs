//! Quickstart: superoptimize a small loop-free kernel end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A deliberately clumsy computation of `rax = (rdi + rsi) * 2` (the kind
//! of code `llvm -O0` emits) is handed to a STOKE [`Session`], which
//! searches for a shorter equivalent under a wall-clock budget, verifies
//! it, and reports the estimated speedup.

use std::time::Duration;
use stoke::{Budget, Config, Session, StokeError, TargetSpec};
use stoke_x86::{Gpr, Program};

fn main() {
    // The target: what an unoptimizing compiler might produce.
    let target: Program = "
        movq rdi, -8(rsp)
        movq rsi, -16(rsp)
        movq -8(rsp), rax
        movq -16(rsp), rcx
        addq rcx, rax
        movq rax, -24(rsp)
        movq -24(rsp), rax
        addq rax, rax
        movq rax, -32(rsp)
        movq -32(rsp), rax
    "
    .parse()
    .expect("target parses");

    let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);

    let config = Config::builder()
        .ell(12)
        .synthesis_iterations(50_000)
        .optimization_iterations(100_000)
        .threads(2)
        .build()
        .expect("configuration is valid");

    println!(
        "=== target ({} instructions, H(T) = {}) ===",
        target.len(),
        target.static_latency()
    );
    print!("{}", target);

    // The budget is generous — this search takes well under a minute — but
    // demonstrates the shape: the MCMC phases (where virtually all the
    // time goes) cannot overrun the deadline. Only the final symbolic
    // validation of the few surviving candidates runs unpreempted.
    let session = Session::new(config)
        .with_budget(Budget::unlimited().with_wall_clock(Duration::from_secs(120)));
    let result = match session.run(&spec) {
        Ok(result) => result,
        Err(StokeError::BudgetExhausted { partial }) => {
            println!("\n(budget ran out; reporting the best partial result)");
            *partial
        }
        Err(e) => panic!("search failed: {e}"),
    };

    println!(
        "\n=== STOKE rewrite ({} instructions, H(R) = {}) ===",
        result.rewrite.len(),
        result.rewrite_latency
    );
    print!("{}", result.rewrite);
    println!("\nverification: {:?}", result.verification);
    println!("estimated speedup: {:.2}x", result.speedup());
    println!(
        "search: {} synthesis proposals, {} optimization proposals, {} testcase evaluations",
        result.stats.synthesis_proposals,
        result.stats.optimization_proposals,
        result.stats.testcases_run
    );
}
