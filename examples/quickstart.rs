//! Quickstart: superoptimize a small loop-free kernel end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --trace /tmp/quickstart.jsonl \
//!     --metrics /tmp/quickstart.prom
//! ```
//!
//! A deliberately clumsy computation of `rax = (rdi + rsi) * 2` (the kind
//! of code `llvm -O0` emits) is handed to a STOKE [`Session`], which
//! searches for a shorter equivalent under a wall-clock budget, verifies
//! it, and reports the estimated speedup. With `--trace` the session
//! writes a structured JSONL trace; with `--metrics` it dumps the final
//! Prometheus-style exposition text.

use std::sync::Arc;
use std::time::Duration;
use stoke::{Budget, Config, Session, StokeError, TargetSpec};
use stoke_obs::{JsonlSink, MetricsRegistry};
use stoke_x86::{Gpr, Program};

fn main() {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace takes a path")),
            "--metrics" => metrics_path = Some(args.next().expect("--metrics takes a path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    // The target: what an unoptimizing compiler might produce.
    let target: Program = "
        movq rdi, -8(rsp)
        movq rsi, -16(rsp)
        movq -8(rsp), rax
        movq -16(rsp), rcx
        addq rcx, rax
        movq rax, -24(rsp)
        movq -24(rsp), rax
        addq rax, rax
        movq rax, -32(rsp)
        movq -32(rsp), rax
    "
    .parse()
    .expect("target parses");

    let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);

    let config = Config::builder()
        .ell(12)
        .synthesis_iterations(50_000)
        .optimization_iterations(100_000)
        .threads(2)
        .build()
        .expect("configuration is valid");

    println!(
        "=== target ({} instructions, H(T) = {}) ===",
        target.len(),
        target.static_latency()
    );
    print!("{}", target);

    // The budget is generous — this search takes well under a minute — but
    // demonstrates the shape: the MCMC phases (where virtually all the
    // time goes) cannot overrun the deadline. Only the final symbolic
    // validation of the few surviving candidates runs unpreempted.
    let mut session = Session::new(config)
        .with_budget(Budget::unlimited().with_wall_clock(Duration::from_secs(120)));
    // Observability is opt-in and passive: attaching a registry or trace
    // sink records the search without changing a single decision.
    let registry = metrics_path
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    if let Some(registry) = &registry {
        session = session.with_metrics(registry.clone());
    }
    if let Some(path) = &trace_path {
        let sink =
            JsonlSink::create(std::path::Path::new(path), "quickstart").expect("trace file opens");
        session = session.with_trace(Arc::new(sink));
    }
    let result = match session.run(&spec) {
        Ok(result) => result,
        Err(StokeError::BudgetExhausted { partial }) => {
            println!("\n(budget ran out; reporting the best partial result)");
            *partial
        }
        Err(e) => panic!("search failed: {e}"),
    };

    println!(
        "\n=== STOKE rewrite ({} instructions, H(R) = {}) ===",
        result.rewrite.len(),
        result.rewrite_latency
    );
    print!("{}", result.rewrite);
    println!("\nverification: {:?}", result.verification);
    println!("estimated speedup: {:.2}x", result.speedup());
    println!(
        "search: {} proposals total ({} synthesis + {} optimization), {} testcase evaluations",
        result.stats.total_proposals(),
        result.stats.synthesis_proposals,
        result.stats.optimization_proposals,
        result.stats.testcases_run
    );
    println!(
        "time: {:.2}s total ({:.2}s synthesis, {:.2}s optimization)",
        result.stats.total_time.as_secs_f64(),
        result.stats.synthesis_time.as_secs_f64(),
        result.stats.optimization_time.as_secs_f64()
    );
    let moves = &result.stats.moves;
    println!("acceptance by move kind:");
    for kind in stoke::MoveStats::KINDS {
        println!(
            "  {:<12} {:>8} proposed, {:>8} accepted ({:.1}%)",
            format!("{kind:?}").to_lowercase(),
            moves.proposed(kind),
            moves.accepted(kind),
            100.0 * moves.acceptance_rate(kind)
        );
    }

    if let Some(path) = &metrics_path {
        let registry = registry.expect("registry exists when --metrics is set");
        std::fs::write(path, registry.render_text()).expect("metrics file writes");
        println!("metrics exposition written to {path}");
    }
    if let Some(path) = &trace_path {
        println!("structured trace written to {path}");
    }
}
