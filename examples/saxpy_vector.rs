//! The SAXPY vectorization case study of Figure 14.
//!
//! ```text
//! cargo run --release --example saxpy_vector
//! ```
//!
//! Shows the scalar baselines produced by the mini-compiler next to the
//! SSE rewrite from the paper, and demonstrates with the emulator that
//! both leave identical memory behind.

use stoke_emu::{run, MachineState, TimingModel};
use stoke_workloads::kernels::{saxpy, SAXPY_STOKE};
use stoke_x86::{Gpr, Program};

fn main() {
    let kernel = saxpy();
    let o0 = kernel.target_o0();
    let o3 = kernel.baseline_o3();
    let vectorized: Program = SAXPY_STOKE.parse().expect("paper rewrite parses");

    println!("=== SAXPY (4x unrolled): x[i] = a*x[i] + y[i] ===\n");
    println!("llvm -O0 stand-in: {} instructions", o0.len());
    println!("gcc -O3 stand-in : {} instructions", o3.len());
    println!("STOKE (paper)    : {} instructions\n", vectorized.len());
    println!("--- gcc -O3 stand-in ---\n{}", o3);
    println!("--- STOKE SSE rewrite (Figure 14) ---\n{}", vectorized);

    // Run both on the same inputs. The scalar baseline follows the kernel
    // ABI (edi = a, rsi = x, rdx = y); the vector rewrite additionally
    // indexes with rcx, which the paper's driver holds at the loop offset
    // (zero here).
    let mut state = MachineState::new();
    state.set_gpr64(Gpr::Rdi, 3);
    state.set_gpr64(Gpr::Rsi, 0x1000);
    state.set_gpr64(Gpr::Rdx, 0x2000);
    state.set_gpr64(Gpr::Rcx, 0);
    state.set_gpr64(Gpr::Rsp, 0x8000);
    state.memory.mark_valid(0x7000, 0x1010);
    for i in 0..4u64 {
        state.memory.poke_wide(0x1000 + 4 * i, 100 + i, 4);
        state.memory.poke_wide(0x2000 + 4 * i, 1000 + 10 * i, 4);
    }

    let scalar_out = run(&o3, &state);
    let vector_out = run(&vectorized, &state);
    assert!(scalar_out.faults.is_clean() && vector_out.faults.is_clean());
    println!("final x[] after the scalar baseline and the SSE rewrite:");
    for i in 0..4u64 {
        let s = scalar_out.state.memory.peek_wide(0x1000 + 4 * i, 4);
        let v = vector_out.state.memory.peek_wide(0x1000 + 4 * i, 4);
        println!("  x[{}] = {} / {}", i, s, v);
        assert_eq!(s, v, "scalar and vector results must agree");
    }

    let timing = TimingModel::default();
    println!(
        "\ntiming model: O0 {} cycles, O3 {} cycles, SSE rewrite {} cycles",
        timing.cycles(&o0),
        timing.cycles(&o3),
        timing.cycles(&vectorized)
    );
    println!(
        "speedup over -O0: O3 {:.2}x, STOKE {:.2}x",
        timing.cycles(&o0) as f64 / timing.cycles(&o3) as f64,
        timing.cycles(&o0) as f64 / timing.cycles(&vectorized) as f64
    );
}
